//! The ResCCLang lexer.
//!
//! Python-style tokenization: comments start with `#`, logical lines end
//! with [`Tok::Newline`], and indentation changes produce [`Tok::Indent`] /
//! [`Tok::Dedent`] pairs. Blank and comment-only lines are skipped entirely
//! and never affect indentation.

use crate::error::{LangError, Result};
use crate::token::{Tok, Token};

/// Tokenize a complete ResCCLang source text.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    tokens: Vec<Token>,
    indents: Vec<u32>,
    line_no: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src,
            tokens: Vec::new(),
            indents: vec![0],
            line_no: 0,
        }
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let lines: Vec<&str> = self.src.lines().collect();
        for (i, raw) in lines.iter().enumerate() {
            self.line_no = (i + 1) as u32;
            self.lex_line(raw)?;
        }
        // Close all open blocks.
        let line = self.line_no + 1;
        while self.indents.len() > 1 {
            self.indents.pop();
            self.tokens.push(Token {
                tok: Tok::Dedent,
                line,
                col: 1,
            });
        }
        self.tokens.push(Token {
            tok: Tok::Eof,
            line,
            col: 1,
        });
        Ok(self.tokens)
    }

    fn lex_line(&mut self, raw: &str) -> Result<()> {
        // Measure indentation (tabs count as 4 columns, per common style).
        let mut indent = 0u32;
        let mut rest = raw;
        for ch in raw.chars() {
            match ch {
                ' ' => indent += 1,
                '\t' => indent += 4,
                _ => break,
            }
            rest = &rest[ch.len_utf8()..];
        }
        let body = rest.trim_end();
        if body.is_empty() || body.starts_with('#') {
            return Ok(()); // blank / comment-only line
        }

        self.handle_indent(indent)?;
        self.lex_tokens(body, indent + 1)?;
        self.tokens.push(Token {
            tok: Tok::Newline,
            line: self.line_no,
            col: (raw.trim_end().len() + 1) as u32,
        });
        Ok(())
    }

    fn handle_indent(&mut self, indent: u32) -> Result<()> {
        let current = *self.indents.last().expect("indent stack never empty");
        if indent > current {
            self.indents.push(indent);
            self.tokens.push(Token {
                tok: Tok::Indent,
                line: self.line_no,
                col: 1,
            });
        } else if indent < current {
            while *self.indents.last().unwrap() > indent {
                self.indents.pop();
                self.tokens.push(Token {
                    tok: Tok::Dedent,
                    line: self.line_no,
                    col: 1,
                });
            }
            if *self.indents.last().unwrap() != indent {
                return Err(LangError::lex(
                    self.line_no,
                    1,
                    format!(
                        "inconsistent dedent to column {indent}; no enclosing block at that level"
                    ),
                ));
            }
        }
        Ok(())
    }

    fn lex_tokens(&mut self, body: &str, start_col: u32) -> Result<()> {
        let bytes = body.as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            let col = start_col + i as u32;
            let c = bytes[i] as char;
            match c {
                ' ' | '\t' => {
                    i += 1;
                }
                '#' => break, // trailing comment
                '(' => self.push(Tok::LParen, col, &mut i, 1),
                ')' => self.push(Tok::RParen, col, &mut i, 1),
                ',' => self.push(Tok::Comma, col, &mut i, 1),
                ':' => self.push(Tok::Colon, col, &mut i, 1),
                '=' => self.push(Tok::Assign, col, &mut i, 1),
                '+' => self.push(Tok::Plus, col, &mut i, 1),
                '-' => self.push(Tok::Minus, col, &mut i, 1),
                '*' => self.push(Tok::Star, col, &mut i, 1),
                '/' => self.push(Tok::Slash, col, &mut i, 1),
                '%' => self.push(Tok::Percent, col, &mut i, 1),
                '"' | '\'' => {
                    let quote = c;
                    let start = i + 1;
                    let mut j = start;
                    while j < bytes.len() && bytes[j] as char != quote {
                        j += 1;
                    }
                    if j == bytes.len() {
                        return Err(LangError::lex(self.line_no, col, "unterminated string"));
                    }
                    let s = body[start..j].to_string();
                    self.tokens.push(Token {
                        tok: Tok::Str(s),
                        line: self.line_no,
                        col,
                    });
                    i = j + 1;
                }
                '0'..='9' => {
                    let start = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &body[start..i];
                    let val: i64 = text.parse().map_err(|_| {
                        LangError::lex(self.line_no, col, format!("integer `{text}` out of range"))
                    })?;
                    self.tokens.push(Token {
                        tok: Tok::Int(val),
                        line: self.line_no,
                        col,
                    });
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let start = i;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    let word = &body[start..i];
                    let tok = match word {
                        "def" => Tok::Def,
                        "for" => Tok::For,
                        "in" => Tok::In,
                        "range" => Tok::Range,
                        "transfer" => Tok::Transfer,
                        _ => Tok::Ident(word.to_string()),
                    };
                    self.tokens.push(Token {
                        tok,
                        line: self.line_no,
                        col,
                    });
                }
                other => {
                    return Err(LangError::lex(
                        self.line_no,
                        col,
                        format!("unexpected character `{other}`"),
                    ));
                }
            }
        }
        Ok(())
    }

    fn push(&mut self, tok: Tok, col: u32, i: &mut usize, width: usize) {
        self.tokens.push(Token {
            tok,
            line: self.line_no,
            col,
        });
        *i += width;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_simple_assignment() {
        assert_eq!(
            kinds("x = 4\n"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(4),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_keywords_and_operators() {
        let ks = kinds("for r in range(0, N):\n    transfer(r, (r+1)%N, 0, r, recv)\n");
        assert!(ks.contains(&Tok::For));
        assert!(ks.contains(&Tok::Range));
        assert!(ks.contains(&Tok::Transfer));
        assert!(ks.contains(&Tok::Percent));
        assert!(ks.contains(&Tok::Indent));
        assert!(ks.contains(&Tok::Dedent));
    }

    #[test]
    fn blank_and_comment_lines_do_not_dedent() {
        let src = "for r in range(0, 4):\n    x = 1\n\n# comment at col 0\n    y = 2\n";
        let ks = kinds(src);
        let dedents = ks.iter().filter(|t| **t == Tok::Dedent).count();
        assert_eq!(dedents, 1, "only the final implicit dedent");
    }

    #[test]
    fn nested_blocks_emit_matched_indents() {
        let src = "for a in range(0, 2):\n    for b in range(0, 2):\n        x = a\n";
        let ks = kinds(src);
        let ind = ks.iter().filter(|t| **t == Tok::Indent).count();
        let ded = ks.iter().filter(|t| **t == Tok::Dedent).count();
        assert_eq!(ind, 2);
        assert_eq!(ded, 2);
    }

    #[test]
    fn string_literals() {
        assert_eq!(
            kinds("name = \"Allreduce\"\n"),
            vec![
                Tok::Ident("name".into()),
                Tok::Assign,
                Tok::Str("Allreduce".into()),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn rejects_bad_character() {
        let err = lex("x = 4 @ 3\n").unwrap_err();
        assert!(matches!(err, LangError::Lex { .. }));
        assert!(err.to_string().contains('@'));
    }

    #[test]
    fn rejects_inconsistent_dedent() {
        let src = "for a in range(0, 2):\n        x = 1\n    y = 2\n";
        let err = lex(src).unwrap_err();
        assert!(err.to_string().contains("inconsistent dedent"));
    }

    #[test]
    fn trailing_comment_is_ignored() {
        let ks = kinds("x = 1  # set x\n");
        assert_eq!(
            ks,
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(1),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }
}
