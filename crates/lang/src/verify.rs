//! Static collective verification: prove, without running anything, that
//! an [`AlgoSpec`] implements its declared operator.
//!
//! The verifier symbolically executes the transfers in step order over
//! per-slot contribution vectors (`state[rank][chunk][source] = how many
//! times source's data has been folded in`), with the same step semantics
//! the dependency DAG uses: all reads of a step observe the pre-step
//! state, writes commit together at the end of the step. It then checks
//! the final state against the operator's contract:
//!
//! * AllGather — `state[r][c]` holds exactly chunk owner `c`'s data,
//! * ReduceScatter — `state[r][r]` holds every rank's data exactly once,
//! * AllReduce — every slot holds every rank's data exactly once.
//!
//! It additionally rejects two silent-corruption hazards the runtime check
//! can mask: sending an uninitialized (empty) value, and two same-step
//! plain-copy writes racing into one slot (nondeterministic result).
//!
//! This is the compile-time twin of the simulator's runtime data check —
//! the compiler runs it during the Analysis phase so broken algorithms
//! fail before any scheduling work happens.

use crate::ast::{CommType, OpType};
use crate::error::{LangError, Result};
use crate::spec::AlgoSpec;

/// One buffer slot's symbolic value: per-source contribution counts.
type Val = Vec<u16>;

/// Statically verify that `spec` implements its declared operator.
pub fn verify_collective(spec: &AlgoSpec) -> Result<()> {
    verify_collective_with_threads(spec, 1)
}

/// [`verify_collective`] with per-chunk verification fanned out over
/// `threads` worker threads.
///
/// Every transfer reads and writes only its own chunk's buffer slots, so
/// the symbolic execution decomposes exactly into one independent run per
/// chunk (this also caps the symbolic state at O(threads · ranks²) instead
/// of O(ranks³)). When several chunks are broken, the error reported is
/// always the lowest-numbered chunk's, independent of thread count.
pub fn verify_collective_with_threads(spec: &AlgoSpec, threads: usize) -> Result<()> {
    let chunks = spec.n_chunks() as usize;

    // Transfers bucketed per chunk, in declaration order (the per-step
    // stable sort happens inside `verify_chunk`).
    let mut by_chunk: Vec<Vec<&crate::spec::TransferRec>> = vec![Vec::new(); chunks];
    for t in spec.transfers() {
        by_chunk[t.chunk.index()].push(t);
    }

    if threads <= 1 || chunks <= 1 {
        for (c, transfers) in by_chunk.iter().enumerate() {
            verify_chunk(spec, c, transfers)?;
        }
        return Ok(());
    }

    let workers = threads.min(chunks);
    let stride = chunks.div_ceil(workers);
    let mut results: Vec<Result<()>> = vec![Ok(()); chunks];
    std::thread::scope(|scope| {
        for (slot_base, (slots, chunk_lists)) in results
            .chunks_mut(stride)
            .zip(by_chunk.chunks(stride))
            .enumerate()
        {
            let by_chunk = chunk_lists;
            scope.spawn(move || {
                for (k, (slot, transfers)) in slots.iter_mut().zip(by_chunk).enumerate() {
                    *slot = verify_chunk(spec, slot_base * stride + k, transfers);
                }
            });
        }
    });
    // Deterministic error selection: lowest chunk first.
    results.into_iter().collect()
}

/// Symbolically execute one chunk's transfers and check its slice of the
/// operator contract.
fn verify_chunk(spec: &AlgoSpec, c: usize, transfers: &[&crate::spec::TransferRec]) -> Result<()> {
    let n = spec.n_ranks() as usize;

    // Initial per-rank state of this chunk's slot, mirroring the
    // operator's input contract.
    let mut state: Vec<Val> = (0..n)
        .map(|r| {
            let mut v = vec![0u16; n];
            match spec.op() {
                OpType::AllGather => {
                    if r == c {
                        v[r] = 1;
                    }
                }
                OpType::AllReduce | OpType::ReduceScatter => v[r] = 1,
            }
            v
        })
        .collect();

    // Transfers grouped by step.
    let mut transfers = transfers.to_vec();
    transfers.sort_by_key(|t| t.step);
    let mut i = 0;
    while i < transfers.len() {
        let step = transfers[i].step;
        let mut j = i;
        while j < transfers.len() && transfers[j].step == step {
            j += 1;
        }
        let group = &transfers[i..j];

        // Reads observe the pre-step state.
        let reads: Vec<Val> = group
            .iter()
            .map(|t| {
                let v = state[t.src.index()].clone();
                if v.iter().all(|&c| c == 0) {
                    return Err(LangError::eval(format!(
                        "`{}`: step {} sends uninitialized data — transfer {}->{} of chunk {} \
                         reads an empty buffer slot",
                        spec.name(),
                        step,
                        t.src,
                        t.dst,
                        t.chunk
                    )));
                }
                Ok(v)
            })
            .collect::<Result<_>>()?;

        // Same-step plain copies into one slot race nondeterministically.
        let mut copy_targets: Vec<u32> = group
            .iter()
            .filter(|t| t.comm == CommType::Recv)
            .map(|t| t.dst.0)
            .collect();
        copy_targets.sort_unstable();
        for w in copy_targets.windows(2) {
            if w[0] == w[1] {
                return Err(LangError::eval(format!(
                    "`{}`: step {} has two racing copies into rank r{} chunk c{} — \
                     the result would be nondeterministic",
                    spec.name(),
                    step,
                    w[0],
                    c
                )));
            }
        }

        // Commit writes.
        for (t, val) in group.iter().zip(reads) {
            let slot = &mut state[t.dst.index()];
            match t.comm {
                CommType::Recv => slot.copy_from_slice(&val),
                CommType::Rrc => {
                    for (a, b) in slot.iter_mut().zip(&val) {
                        *a = a.saturating_add(*b);
                    }
                }
            }
        }
        i = j;
    }

    // Final contract for this chunk's column.
    for (r, got) in state.iter().enumerate() {
        let want: Option<Val> = match spec.op() {
            OpType::AllGather => {
                let mut v = vec![0u16; n];
                v[c] = 1;
                Some(v)
            }
            OpType::AllReduce => Some(vec![1u16; n]),
            OpType::ReduceScatter => {
                if r == c {
                    Some(vec![1u16; n])
                } else {
                    None
                }
            }
        };
        if let Some(want) = want {
            if *got != want {
                return Err(LangError::eval(format!(
                    "`{}` does not implement {}: rank r{r} chunk c{c} ends with \
                     contributions {got:?}, expected {want:?}",
                    spec.name(),
                    spec.op()
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::AlgoBuilder;

    fn ring_ag(n: u32) -> AlgoSpec {
        let mut b = AlgoBuilder::new("ring", OpType::AllGather, n);
        for r in 0..n {
            for step in 0..n - 1 {
                b.recv(r, (r + 1) % n, step, (r + n - step) % n);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn accepts_correct_ring_allgather() {
        verify_collective(&ring_ag(8)).unwrap();
    }

    #[test]
    fn accepts_correct_ring_reduce_scatter() {
        let n = 4u32;
        let mut b = AlgoBuilder::new("rs", OpType::ReduceScatter, n);
        for r in 0..n {
            for step in 0..n - 1 {
                b.rrc(r, (r + 1) % n, step, (r + n - step - 1) % n);
            }
        }
        verify_collective(&b.build().unwrap()).unwrap();
    }

    #[test]
    fn rejects_incomplete_allgather() {
        // Only one chunk ever moves.
        let mut b = AlgoBuilder::new("bad", OpType::AllGather, 4);
        b.recv(0, 1, 0, 0).recv(1, 2, 1, 0).recv(2, 3, 2, 0);
        let err = verify_collective(&b.build().unwrap()).unwrap_err();
        assert!(err.to_string().contains("does not implement"));
    }

    #[test]
    fn rejects_double_reduction() {
        // Rank 1 reduces its value into rank 0 twice.
        let mut b = AlgoBuilder::new("dup", OpType::ReduceScatter, 2);
        b.rrc(1, 0, 0, 0).rrc(1, 0, 1, 0);
        let err = verify_collective(&b.build().unwrap()).unwrap_err();
        assert!(err.to_string().contains("does not implement"));
    }

    #[test]
    fn rejects_uninitialized_send() {
        // Rank 1 forwards chunk 0 before receiving it.
        let mut b = AlgoBuilder::new("early", OpType::AllGather, 4);
        b.recv(1, 2, 0, 0) // rank 1 does not hold chunk 0 yet
            .recv(0, 1, 1, 0);
        let err = verify_collective(&b.build().unwrap()).unwrap_err();
        assert!(err.to_string().contains("uninitialized"));
    }

    #[test]
    fn rejects_same_step_copy_race() {
        // Ranks 0 and 2 both copy into rank 1's chunk slot at step 0...
        let mut b = AlgoBuilder::new("race", OpType::AllGather, 4);
        b.recv(0, 1, 0, 0);
        // chunk 0 is owned by rank 0 only, but craft a race via chunk 0 at
        // same step from rank 0 twice is a duplicate tuple — use a second
        // source that also holds data: self-owned chunk abuse is blocked,
        // so race on an AllReduce-style spec instead.
        let spec = b.build().unwrap();
        verify_collective(&spec).unwrap_err(); // incomplete anyway
        let mut b = AlgoBuilder::new("race2", OpType::AllReduce, 3);
        // Both rank 1 and rank 2 *copy* into rank 0 chunk 0 at step 0.
        b.recv(1, 0, 0, 0).recv(2, 0, 0, 0);
        let err = verify_collective(&b.build().unwrap()).unwrap_err();
        assert!(err.to_string().contains("racing copies"), "{err}");
    }

    #[test]
    fn same_step_reductions_are_fine() {
        // A one-step fan-in ReduceScatter: both peers reduce into each
        // chunk's owner simultaneously — same-step rrc commutes.
        let mut b = AlgoBuilder::new("fanin", OpType::ReduceScatter, 3);
        for c in 0..3u32 {
            b.rrc((c + 1) % 3, c, 0, c).rrc((c + 2) % 3, c, 0, c);
        }
        verify_collective(&b.build().unwrap()).unwrap();
    }
}
