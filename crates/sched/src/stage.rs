//! Stage partitioning — the manual stage division that MSCCLang-style
//! stage-level execution requires (§2.1(2)).
//!
//! The algorithm's step range is cut into `k` contiguous bands; every task
//! falls into the stage owning its step. Stages only need to satisfy data
//! dependencies *between* them (guaranteed because data dependencies go
//! from smaller to larger steps), and each stage runs algorithm-level
//! execution internally on its own channels/TBs.

use rescc_ir::{DepDag, TaskId};

/// A partition of the DAG's tasks into ordered stages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StagePartition {
    /// Tasks of each stage, in DAG declaration order.
    pub stages: Vec<Vec<TaskId>>,
}

impl StagePartition {
    /// Partition into (at most) `k` stages by slicing the step range into
    /// equal-width bands. Empty bands are dropped, so the result may have
    /// fewer than `k` stages.
    pub fn by_steps(dag: &DepDag, k: u32) -> Self {
        assert!(k >= 1, "need at least one stage");
        let max_step = dag.tasks().iter().map(|t| t.step.0).max().unwrap_or(0);
        let n_steps = max_step + 1;
        let band = n_steps.div_ceil(k);
        let mut stages: Vec<Vec<TaskId>> = vec![Vec::new(); k as usize];
        for t in dag.tasks() {
            let s = (t.step.0 / band).min(k - 1) as usize;
            stages[s].push(t.id);
        }
        stages.retain(|s| !s.is_empty());
        Self { stages }
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when there are no stages (unreachable for non-empty DAGs).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stage index of every task.
    pub fn stage_of(&self, n_tasks: usize) -> Vec<usize> {
        let mut v = vec![usize::MAX; n_tasks];
        for (i, st) in self.stages.iter().enumerate() {
            for &t in st {
                v[t.index()] = i;
            }
        }
        v
    }

    /// Validate that inter-stage data dependencies are forward-only.
    pub fn validate(&self, dag: &DepDag) -> Result<(), rescc_ir::IrError> {
        let stage_of = self.stage_of(dag.len());
        for t in dag.tasks() {
            if stage_of[t.id.index()] == usize::MAX {
                return Err(rescc_ir::IrError::new(format!(
                    "task {} not assigned to any stage",
                    t.id
                )));
            }
            for &p in dag.preds(t.id) {
                if stage_of[p.index()] > stage_of[t.id.index()] {
                    return Err(rescc_ir::IrError::new(format!(
                        "dependency {} of task {} lives in a later stage",
                        p, t.id
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescc_lang::{AlgoBuilder, OpType};
    use rescc_topology::Topology;

    fn ring_dag(n: u32) -> DepDag {
        let mut b = AlgoBuilder::new("Ring", OpType::AllGather, n);
        for r in 0..n {
            for step in 0..n - 1 {
                b.recv(r, (r + 1) % n, step, (r + n - step) % n);
            }
        }
        DepDag::build(&b.build().unwrap(), &Topology::a100(1, n)).unwrap()
    }

    #[test]
    fn partitions_cover_all_tasks() {
        let dag = ring_dag(8);
        for k in 1..=7 {
            let p = StagePartition::by_steps(&dag, k);
            let total: usize = p.stages.iter().map(Vec::len).sum();
            assert_eq!(total, dag.len());
            p.validate(&dag).unwrap();
        }
    }

    #[test]
    fn one_stage_is_whole_dag() {
        let dag = ring_dag(4);
        let p = StagePartition::by_steps(&dag, 1);
        assert_eq!(p.len(), 1);
        assert_eq!(p.stages[0].len(), dag.len());
    }

    #[test]
    fn k_larger_than_steps_clamps() {
        let dag = ring_dag(4); // 3 steps
        let p = StagePartition::by_steps(&dag, 10);
        assert!(p.len() <= 3);
        p.validate(&dag).unwrap();
    }
}
