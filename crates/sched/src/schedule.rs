//! The scheduler's output: a global task pipeline assembled from
//! sub-pipelines (Fig. 5(c)–(d)).
//!
//! A **sub-pipeline** is a set of tasks that execute concurrently in steady
//! state, each looping over all micro-batches (task-level execution).
//! Within a sub-pipeline:
//!
//! * data dependencies are allowed — dependent tasks pipeline across
//!   micro-batches (task B processes micro-batch *m* while its producer A
//!   processes *m+1*),
//! * communication dependencies are **forbidden** — two tasks sharing a
//!   contention resource would contend for the whole execution, so the
//!   scheduler places them in different sub-pipelines.
//!
//! The global pipeline is the ordered concatenation of sub-pipelines; a
//! task's data-dependency predecessors always appear in the same or an
//! earlier sub-pipeline.

use rescc_ir::{DepDag, IrError, TaskId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A scheduled execution pipeline.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Sub-pipelines in execution order. Within a sub-pipeline, tasks are
    /// listed in scheduling order (which respects data dependencies).
    pub sub_pipelines: Vec<Vec<TaskId>>,
    /// Name of the policy that produced this schedule (`"hpds"`, `"rr"`, …).
    pub policy: String,
}

impl Schedule {
    /// Flatten to a single task order (sub-pipelines concatenated).
    pub fn linear_order(&self) -> Vec<TaskId> {
        self.sub_pipelines.iter().flatten().copied().collect()
    }

    /// Total number of scheduled tasks.
    pub fn n_tasks(&self) -> usize {
        self.sub_pipelines.iter().map(Vec::len).sum()
    }

    /// Index of the sub-pipeline each task belongs to.
    pub fn sub_pipeline_of(&self) -> Vec<(TaskId, usize)> {
        let mut v = Vec::with_capacity(self.n_tasks());
        for (i, sp) in self.sub_pipelines.iter().enumerate() {
            for &t in sp {
                v.push((t, i));
            }
        }
        v
    }

    /// Validate the schedule against its DAG:
    ///
    /// 1. every task appears exactly once,
    /// 2. the linear order respects data dependencies, **and** no task's
    ///    predecessor lives in a *later* sub-pipeline,
    /// 3. no two tasks inside one sub-pipeline share a contention resource
    ///    (the communication-dependency constraint
    ///    `∀ t_i, t_j ∈ P_k: comm(t_i, t_j) ≠ ∅ ⇒ l_i ≠ l_j` of §4.3).
    pub fn validate(&self, dag: &DepDag) -> Result<(), IrError> {
        let order = self.linear_order();
        dag.validate_order(&order)?;

        // Rule 2b: predecessors in same-or-earlier sub-pipeline.
        let mut sp_of = vec![usize::MAX; dag.len()];
        for (i, sp) in self.sub_pipelines.iter().enumerate() {
            for &t in sp {
                sp_of[t.index()] = i;
            }
        }
        for t in dag.tasks() {
            for &p in dag.preds(t.id) {
                if sp_of[p.index()] > sp_of[t.id.index()] {
                    return Err(IrError::new(format!(
                        "task {} in sub-pipeline {} depends on {} in later sub-pipeline {}",
                        t.id,
                        sp_of[t.id.index()],
                        p,
                        sp_of[p.index()]
                    )));
                }
            }
        }

        // Rule 3: no intra-sub-pipeline oversubscription — a conflict
        // resource may carry at most `saturation_tbs` concurrent tasks.
        for (i, sp) in self.sub_pipelines.iter().enumerate() {
            check_sub_pipeline_loads(dag, i, sp)?;
        }
        Ok(())
    }

    /// Targeted feasibility recheck after a reroute changed the conflict
    /// sets of the `dirty` tasks (and of no others).
    ///
    /// A reroute touches neither the task set nor the dependency edges, so
    /// rules 1 and 2 of [`Self::validate`] cannot break — and contention
    /// loads (rule 3) can only have moved inside sub-pipelines that contain
    /// a dirty task. This rechecks rule 3 on exactly those sub-pipelines
    /// and returns their indices (so the caller can re-lint the same set),
    /// at a cost proportional to the dirty region instead of the whole
    /// pipeline. Errors match [`Self::validate`]'s rule-3 errors.
    pub fn revalidate_dirty(&self, dag: &DepDag, dirty: &[TaskId]) -> Result<Vec<u32>, IrError> {
        let mut is_dirty = vec![false; dag.len()];
        for &t in dirty {
            is_dirty[t.index()] = true;
        }
        let mut touched = Vec::new();
        for (i, sp) in self.sub_pipelines.iter().enumerate() {
            if !sp.iter().any(|t| is_dirty[t.index()]) {
                continue;
            }
            touched.push(i as u32);
            check_sub_pipeline_loads(dag, i, sp)?;
        }
        Ok(touched)
    }
}

/// Rule 3 of [`Schedule::validate`] for one sub-pipeline: no conflict
/// resource may carry more concurrent tasks than its saturation limit.
fn check_sub_pipeline_loads(dag: &DepDag, i: usize, sp: &[TaskId]) -> Result<(), IrError> {
    let mut load: HashMap<_, u32> = HashMap::new();
    for &t in sp {
        for r in dag.task(t).conflict.iter() {
            let l = load.entry(r).or_insert(0);
            *l += 1;
            if *l > dag.conflict_limit(r) {
                return Err(IrError::new(format!(
                    "sub-pipeline {i}: task {t} oversubscribes resource {r} \
                     (load {l} > saturation {})",
                    dag.conflict_limit(r)
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescc_lang::{AlgoBuilder, OpType};
    use rescc_topology::Topology;

    fn tiny_dag() -> DepDag {
        // 0->1 (chunk0), 1->2 (chunk0, depends), 2->3 (chunk1, independent)
        let mut b = AlgoBuilder::new("t", OpType::AllGather, 4);
        b.recv(0, 1, 0, 0).recv(1, 2, 1, 0).recv(2, 3, 0, 1);
        DepDag::build(&b.build().unwrap(), &Topology::a100(1, 4)).unwrap()
    }

    #[test]
    fn valid_single_sub_pipeline() {
        let dag = tiny_dag();
        let s = Schedule {
            sub_pipelines: vec![vec![TaskId::new(0), TaskId::new(1), TaskId::new(2)]],
            policy: "test".into(),
        };
        // 1->2 and 2->3 share GpuTx/Rx of rank 2? t1=(1->2): GpuTx(1),GpuRx(2);
        // t2=(2->3): GpuTx(2),GpuRx(3) — disjoint. t0=(0->1): disjoint too.
        s.validate(&dag).unwrap();
    }

    #[test]
    fn detects_dependency_in_later_sub_pipeline() {
        let dag = tiny_dag();
        let s = Schedule {
            sub_pipelines: vec![vec![TaskId::new(1), TaskId::new(2)], vec![TaskId::new(0)]],
            policy: "test".into(),
        };
        assert!(s.validate(&dag).is_err());
    }

    #[test]
    fn detects_intra_sub_pipeline_contention() {
        // The pair channel 0->1 admits `saturation_tbs` (4) concurrent
        // tasks; a fifth in the same sub-pipeline oversubscribes it.
        let mut b = AlgoBuilder::new("t", OpType::AllGather, 8);
        for c in 0..5u32 {
            b.recv(0, 1, 0, c);
        }
        let dag = DepDag::build(&b.build().unwrap(), &Topology::a100(1, 8)).unwrap();
        let ids: Vec<TaskId> = (0..5).map(TaskId::new).collect();
        let bad = Schedule {
            sub_pipelines: vec![ids.clone()],
            policy: "test".into(),
        };
        let err = bad.validate(&dag).unwrap_err();
        assert!(err.to_string().contains("oversubscribes"), "{err}");
        // Splitting the fifth task off restores validity.
        let good = Schedule {
            sub_pipelines: vec![ids[..4].to_vec(), ids[4..].to_vec()],
            policy: "test".into(),
        };
        good.validate(&dag).unwrap();
        // Four tasks on one channel (exactly at saturation) are fine.
        let at_limit = Schedule {
            sub_pipelines: vec![ids[..4].to_vec(), ids[4..].to_vec()],
            policy: "test".into(),
        };
        at_limit.validate(&dag).unwrap();
    }

    #[test]
    fn detects_missing_task() {
        let dag = tiny_dag();
        let s = Schedule {
            sub_pipelines: vec![vec![TaskId::new(0), TaskId::new(1)]],
            policy: "test".into(),
        };
        assert!(s.validate(&dag).is_err());
    }
}
