//! Shared flat scheduling state for the rearchitected HPDS and RR.
//!
//! The seed schedulers (kept in [`crate::reference`]) spend their time in
//! three places at scale: an `O(n_chunks)` linear scan per chunk
//! selection, `HashMap<ResourceId, u32>` load lookups on every conflict
//! check, and a rescan of a chunk's *entire* unscheduled task list on
//! every visit even when only one task is data-free. This module replaces
//! all three with flat arrays over the DAG's dense resource index:
//!
//! * per-chunk **free lists** hold exactly the data-free unscheduled tasks
//!   in `(step, id)` order — the order the reference scan would discover
//!   them — so a visit is `O(free)` instead of `O(pending)`;
//! * per-resource sub-pipeline load is a `Vec<u32>` indexed by the DAG's
//!   dense resource index — conflict checks are array reads;
//! * chunk visits are grouped into **waves** that the caller derives from
//!   its selection rule (HPDS: all flagged chunks at the current maximum
//!   priority, ascending id; RR: one full pass). Within a wave, chunks are
//!   *speculatively* gathered in parallel against the load state frozen at
//!   wave start, then committed serially in wave order. A commit is valid
//!   iff none of the accepted tasks' resources were loaded by an earlier
//!   commit of the same wave — loads only grow, so rejections can never
//!   flip back — and an invalidated chunk is simply re-gathered serially
//!   against the live state. The result is bit-identical to the serial
//!   visit order for any thread count (property-tested against the
//!   reference implementations).
//!
//! Data-dependency edges always connect tasks of the *same* chunk, so a
//! commit only ever frees tasks in the committed chunk itself — wave
//! members cannot change each other's eligibility, only their resource
//! loads, which is exactly what commit validation checks.

use rescc_ir::{DepDag, TaskId};
use rescc_topology::ChunkId;

/// Minimum wave width before speculation is worth a round of thread
/// spawns; below this the serial visit loop wins.
const MIN_PARALLEL_WAVE: usize = 16;

/// Mutable scheduling state over a [`DepDag`], flattened onto the dense
/// resource index.
pub(crate) struct FlatState<'a> {
    dag: &'a DepDag,
    /// Unscheduled-predecessor count per task.
    remaining_preds: Vec<u32>,
    /// Per-chunk data-free unscheduled tasks, in `(step, id)` order.
    free: Vec<Vec<TaskId>>,
    /// Per-chunk unscheduled task count (free or not).
    pending: Vec<u32>,
    /// Current sub-pipeline load per dense resource.
    pc_load: Vec<u32>,
    /// Saturation limit per dense resource (cached from the DAG).
    limit: Vec<u32>,
    /// Wave stamp per dense resource: `dirty[d] == wave_id` iff an earlier
    /// commit of the current wave loaded `d`.
    dirty: Vec<u64>,
    wave_id: u64,
    /// Per-visit claim scratch (dense-indexed) and its touched list.
    claim: Vec<u32>,
    claim_touched: Vec<u32>,
    /// Total unscheduled tasks.
    pub(crate) remaining: usize,
}

impl<'a> FlatState<'a> {
    pub(crate) fn new(dag: &'a DepDag) -> Self {
        let n = dag.len();
        let n_chunks = dag.n_chunks() as usize;
        let n_res = dag.n_dense_resources();
        let remaining_preds: Vec<u32> = (0..n)
            .map(|i| dag.preds(TaskId::new(i as u32)).len() as u32)
            .collect();
        let mut free = Vec::with_capacity(n_chunks);
        let mut pending = Vec::with_capacity(n_chunks);
        for c in 0..n_chunks {
            let tasks = dag.chunk_tasks(ChunkId::new(c as u32));
            // `chunk_tasks` is (step, id)-sorted; the data-free subset
            // inherits that order.
            free.push(
                tasks
                    .iter()
                    .copied()
                    .filter(|t| remaining_preds[t.index()] == 0)
                    .collect(),
            );
            pending.push(tasks.len() as u32);
        }
        Self {
            dag,
            remaining_preds,
            free,
            pending,
            pc_load: vec![0; n_res],
            limit: (0..n_res as u32)
                .map(|d| dag.conflict_limit_at(d))
                .collect(),
            dirty: vec![0; n_res],
            wave_id: 0,
            claim: vec![0; n_res],
            claim_touched: Vec::new(),
            remaining: n,
        }
    }

    /// Does chunk `c` still have unscheduled tasks?
    pub(crate) fn has_pending(&self, c: usize) -> bool {
        self.pending[c] > 0
    }

    /// Reset per-sub-pipeline state (call when sealing a sub-pipeline).
    pub(crate) fn start_sub_pipeline(&mut self) {
        self.pc_load.fill(0);
    }

    /// Gather chunk `c`'s schedulable tasks against `loads` (the reference
    /// algorithm's lines 10–15): every free task whose conflict resources
    /// all stay below saturation given `loads` plus the claims of tasks
    /// accepted earlier in this same gather.
    fn gather(
        free: &[TaskId],
        dag: &DepDag,
        loads: &[u32],
        limit: &[u32],
        claim: &mut [u32],
        claim_touched: &mut Vec<u32>,
    ) -> Vec<TaskId> {
        let mut node_list = Vec::new();
        for &tid in free {
            let res = dag.conflict_dense(tid);
            let conflict = res
                .as_slice()
                .iter()
                .any(|&d| loads[d as usize] + claim[d as usize] >= limit[d as usize]);
            if !conflict {
                node_list.push(tid);
                for &d in res.as_slice() {
                    if claim[d as usize] == 0 {
                        claim_touched.push(d);
                    }
                    claim[d as usize] += 1;
                }
            }
        }
        for &d in claim_touched.iter() {
            claim[d as usize] = 0;
        }
        claim_touched.clear();
        node_list
    }

    /// Gather chunk `c` against the live load state (exact, serial).
    fn gather_live(&mut self, c: usize) -> Vec<TaskId> {
        Self::gather(
            &self.free[c],
            self.dag,
            &self.pc_load,
            &self.limit,
            &mut self.claim,
            &mut self.claim_touched,
        )
    }

    /// Apply an exact gather result: load resources, pop accepted tasks
    /// from the free list, release successors, append to `pc`.
    fn apply(&mut self, c: usize, node_list: &[TaskId], pc: &mut Vec<TaskId>) {
        debug_assert!(!node_list.is_empty());
        for &tid in node_list {
            for &d in self.dag.conflict_dense(tid).as_slice() {
                self.pc_load[d as usize] += 1;
                self.dirty[d as usize] = self.wave_id;
            }
        }
        // `node_list` is an ordered subsequence of `free[c]`: drop its
        // members with one linear merge walk.
        let mut next = 0usize;
        self.free[c].retain(|t| {
            if next < node_list.len() && *t == node_list[next] {
                next += 1;
                false
            } else {
                true
            }
        });
        debug_assert_eq!(next, node_list.len());
        // Release data dependents. Every successor is in chunk `c` itself
        // (dependency edges are intra-chunk), and its step exceeds its
        // predecessor's, so ordered insertion keeps the free list sorted.
        for &tid in node_list {
            for &s in self.dag.succs(tid) {
                self.remaining_preds[s.index()] -= 1;
                if self.remaining_preds[s.index()] == 0 {
                    let key = |t: TaskId| (self.dag.task(t).step, t);
                    let pos = self.free[c].partition_point(|&t| key(t) < key(s));
                    self.free[c].insert(pos, s);
                }
            }
        }
        self.pending[c] -= node_list.len() as u32;
        self.remaining -= node_list.len();
        pc.extend_from_slice(node_list);
    }

    /// Visit one chunk exactly (serial path): gather against live loads
    /// and apply. Returns whether the chunk contributed anything.
    pub(crate) fn visit(&mut self, c: usize, pc: &mut Vec<TaskId>) -> bool {
        if self.free[c].is_empty() {
            return false;
        }
        let node_list = self.gather_live(c);
        if node_list.is_empty() {
            return false;
        }
        self.apply(c, &node_list, pc);
        true
    }

    /// Visit every chunk of `wave` in order, speculating in parallel when
    /// `threads > 1` and the wave is wide enough. `contributed[i]` is set
    /// iff `wave[i]` added at least one task. Bit-identical to calling
    /// [`Self::visit`] serially over `wave`.
    pub(crate) fn process_wave(
        &mut self,
        wave: &[u32],
        threads: usize,
        pc: &mut Vec<TaskId>,
        contributed: &mut Vec<bool>,
    ) {
        contributed.clear();
        contributed.resize(wave.len(), false);
        let workers = threads.min(wave.len() / (MIN_PARALLEL_WAVE / 2).max(1));
        if workers <= 1 || wave.len() < MIN_PARALLEL_WAVE {
            for (i, &c) in wave.iter().enumerate() {
                contributed[i] = self.visit(c as usize, pc);
            }
            return;
        }

        // Speculation phase: gather every wave member against the load
        // state frozen at wave start. Workers share the immutable state;
        // each has its own claim scratch.
        let mut spec: Vec<Vec<TaskId>> = vec![Vec::new(); wave.len()];
        let stride = wave.len().div_ceil(workers);
        let (dag, free, loads, limit) = (self.dag, &self.free, &self.pc_load, &self.limit);
        std::thread::scope(|scope| {
            for (slot, chunk_ids) in spec.chunks_mut(stride).zip(wave.chunks(stride)) {
                scope.spawn(move || {
                    let mut claim = vec![0u32; loads.len()];
                    let mut touched = Vec::new();
                    for (out, &c) in slot.iter_mut().zip(chunk_ids) {
                        *out = Self::gather(
                            &free[c as usize],
                            dag,
                            loads,
                            limit,
                            &mut claim,
                            &mut touched,
                        );
                    }
                });
            }
        });

        // Commit phase, in wave order. A speculative gather is exact iff
        // none of its accepted tasks' resources were loaded by an earlier
        // commit of this wave (loads are monotone within a sub-pipeline,
        // so speculative *rejections* can never become acceptances).
        self.wave_id += 1;
        for (i, &c) in wave.iter().enumerate() {
            let c = c as usize;
            let mut node_list = std::mem::take(&mut spec[i]);
            if node_list.is_empty() {
                // Free list was empty or everything conflicted against the
                // frozen loads; live loads are only higher.
                continue;
            }
            let stale = node_list.iter().any(|&tid| {
                self.dag
                    .conflict_dense(tid)
                    .as_slice()
                    .iter()
                    .any(|&d| self.dirty[d as usize] == self.wave_id)
            });
            if stale {
                node_list = self.gather_live(c);
                if node_list.is_empty() {
                    continue;
                }
            }
            self.apply(c, &node_list, pc);
            contributed[i] = true;
        }
    }
}
