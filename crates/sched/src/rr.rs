//! Round-robin scheduling — the baseline of Fig. 10(b).
//!
//! RR visits chunks in a fixed circular order of ascending chunk id and
//! schedules whatever is currently free and communication-compatible, with
//! no priorities and no dynamic re-ordering. It satisfies the same
//! correctness constraints as HPDS (the produced schedule validates), but
//! ignores load balance, so frequently-conflicting chunks pile into late
//! sub-pipelines and leave more bubbles.

use crate::schedule::Schedule;
use rescc_ir::{DepDag, TaskId};
use rescc_topology::{ChunkId, ResourceId};
use std::collections::HashMap;

/// Run the round-robin scheduler.
pub fn round_robin(dag: &DepDag) -> Schedule {
    let n_chunks = dag.n_chunks() as usize;
    let n = dag.len();

    let mut remaining_preds: Vec<u32> = (0..n)
        .map(|i| dag.preds(TaskId::new(i as u32)).len() as u32)
        .collect();
    let mut scheduled = vec![false; n];
    let mut chunk_pending: Vec<Vec<TaskId>> = (0..n_chunks)
        .map(|c| dag.chunk_tasks(ChunkId::new(c as u32)).to_vec())
        .collect();

    let mut remaining = n;
    let mut sub_pipelines: Vec<Vec<TaskId>> = Vec::new();

    while remaining > 0 {
        let mut pc: Vec<TaskId> = Vec::new();
        let mut pc_load: HashMap<ResourceId, u32> = HashMap::new();
        let mut progressed = true;
        // Keep cycling the immutable chunk order until a full pass adds
        // nothing; then seal the sub-pipeline.
        while progressed {
            progressed = false;
            // Range loop: the body also mutates `chunk_pending[c]`.
            #[allow(clippy::needless_range_loop)]
            for c in 0..n_chunks {
                let mut node_list: Vec<TaskId> = Vec::new();
                let mut claimed: HashMap<ResourceId, u32> = HashMap::new();
                for &tid in &chunk_pending[c] {
                    if remaining_preds[tid.index()] != 0 {
                        continue;
                    }
                    let res = dag.task(tid).conflict;
                    let conflict = res.iter().any(|r| {
                        let load = pc_load.get(&r).copied().unwrap_or(0)
                            + claimed.get(&r).copied().unwrap_or(0);
                        load >= dag.conflict_limit(r)
                    });
                    if !conflict {
                        node_list.push(tid);
                        for r in res.iter() {
                            *claimed.entry(r).or_insert(0) += 1;
                        }
                    }
                }
                if node_list.is_empty() {
                    continue;
                }
                for &tid in &node_list {
                    scheduled[tid.index()] = true;
                    for &s in dag.succs(tid) {
                        remaining_preds[s.index()] -= 1;
                    }
                }
                chunk_pending[c].retain(|t| !scheduled[t.index()]);
                remaining -= node_list.len();
                for (r, n) in claimed {
                    *pc_load.entry(r).or_insert(0) += n;
                }
                pc.extend(node_list);
                progressed = true;
            }
        }
        debug_assert!(!pc.is_empty(), "RR sub-pipeline made no progress");
        sub_pipelines.push(pc);
    }

    Schedule {
        sub_pipelines,
        policy: "rr".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescc_lang::{AlgoBuilder, OpType};
    use rescc_topology::Topology;

    fn ring_ag(n: u32) -> rescc_lang::AlgoSpec {
        let mut b = AlgoBuilder::new("Ring", OpType::AllGather, n);
        for r in 0..n {
            for step in 0..n - 1 {
                b.recv(r, (r + 1) % n, step, (r + n - step) % n);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn rr_schedules_every_task_once() {
        let topo = Topology::a100(2, 4);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        let s = round_robin(&dag);
        assert_eq!(s.n_tasks(), dag.len());
        s.validate(&dag).unwrap();
    }

    #[test]
    fn rr_is_deterministic() {
        let topo = Topology::a100(2, 8);
        let dag = DepDag::build(&ring_ag(16), &topo).unwrap();
        assert_eq!(round_robin(&dag), round_robin(&dag));
    }
}
