//! Round-robin scheduling — the baseline of Fig. 10(b).
//!
//! RR visits chunks in a fixed circular order of ascending chunk id and
//! schedules whatever is currently free and communication-compatible, with
//! no priorities and no dynamic re-ordering. It satisfies the same
//! correctness constraints as HPDS (the produced schedule validates), but
//! ignores load balance, so frequently-conflicting chunks pile into late
//! sub-pipelines and leave more bubbles.
//!
//! A full pass over the chunks is already a wave in the sense of
//! [`crate::flat`], so RR shares the flat state and the speculative wave
//! parallelism with HPDS. Output is bit-identical to
//! [`crate::round_robin_reference`] for every thread count.

use crate::flat::FlatState;
use crate::schedule::Schedule;
use rescc_ir::{DepDag, TaskId};

/// Run the round-robin scheduler.
pub fn round_robin(dag: &DepDag) -> Schedule {
    round_robin_with_threads(dag, 1)
}

/// [`round_robin`] with chunk gathering fanned out over `threads` worker
/// threads (speculative wave execution; identical output for any thread
/// count).
pub fn round_robin_with_threads(dag: &DepDag, threads: usize) -> Schedule {
    let n_chunks = dag.n_chunks() as usize;
    let mut st = FlatState::new(dag);
    let mut sub_pipelines: Vec<Vec<TaskId>> = Vec::new();
    let mut wave: Vec<u32> = Vec::new();
    let mut contributed: Vec<bool> = Vec::new();

    while st.remaining > 0 {
        let mut pc: Vec<TaskId> = Vec::new();
        st.start_sub_pipeline();
        // Keep cycling the immutable chunk order until a full pass adds
        // nothing; then seal the sub-pipeline.
        let mut progressed = true;
        while progressed {
            wave.clear();
            wave.extend((0..n_chunks as u32).filter(|&c| st.has_pending(c as usize)));
            st.process_wave(&wave, threads, &mut pc, &mut contributed);
            progressed = contributed.iter().any(|&b| b);
        }
        debug_assert!(!pc.is_empty(), "RR sub-pipeline made no progress");
        sub_pipelines.push(pc);
    }

    Schedule {
        sub_pipelines,
        policy: "rr".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::round_robin_reference;
    use rescc_lang::{AlgoBuilder, OpType};
    use rescc_topology::Topology;

    fn ring_ag(n: u32) -> rescc_lang::AlgoSpec {
        let mut b = AlgoBuilder::new("Ring", OpType::AllGather, n);
        for r in 0..n {
            for step in 0..n - 1 {
                b.recv(r, (r + 1) % n, step, (r + n - step) % n);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn rr_schedules_every_task_once() {
        let topo = Topology::a100(2, 4);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        let s = round_robin(&dag);
        assert_eq!(s.n_tasks(), dag.len());
        s.validate(&dag).unwrap();
    }

    #[test]
    fn rr_is_deterministic() {
        let topo = Topology::a100(2, 8);
        let dag = DepDag::build(&ring_ag(16), &topo).unwrap();
        assert_eq!(round_robin(&dag), round_robin(&dag));
    }

    #[test]
    fn rr_matches_reference() {
        for (nodes, gpus, ranks) in [(1, 8, 8), (2, 4, 8), (2, 8, 16), (4, 8, 32)] {
            let topo = Topology::a100(nodes, gpus);
            let dag = DepDag::build(&ring_ag(ranks), &topo).unwrap();
            let want = round_robin_reference(&dag);
            assert_eq!(round_robin(&dag), want, "serial flat vs reference @{ranks}");
            for threads in [2, 3, 8] {
                assert_eq!(
                    round_robin_with_threads(&dag, threads),
                    want,
                    "{threads}-thread vs reference @{ranks}"
                );
            }
        }
    }
}
