//! Analytic cost model of §3: closed-form link execution times under the
//! three execution granularities (Eq. 3, 4, 5) and their asymptotic
//! comparison (Eq. 6).
//!
//! These formulas are not used by the runtime scheduler — the simulator
//! measures real times — but they predict which granularity wins and are
//! cross-checked against simulation in the test suite.

use rescc_topology::LinkParams;

/// Per-link workload description: the tasks a single link carries during
/// one micro-batch, with their data-dependency bubble (stall) estimates.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkLoad {
    /// Cost parameters of the link.
    pub params: LinkParams,
    /// Chunk size in bytes.
    pub chunk_bytes: u64,
    /// Bubble time (ns) each of the link's `m` tasks incurs per micro-batch
    /// under lazy execution; `bubbles.len() == m`.
    pub bubbles_ns: Vec<f64>,
}

impl LinkLoad {
    /// Number of tasks per micro-batch on this link.
    pub fn m(&self) -> usize {
        self.bubbles_ns.len()
    }

    /// `α + c·β` for one task.
    pub fn task_cost_ns(&self) -> f64 {
        self.params.serial_cost_ns(self.chunk_bytes)
    }
}

/// Eq. (3) — algorithm-level execution: the full per-micro-batch cost
/// (tasks + bubbles) repeats `n` times.
pub fn algorithm_level_time_ns(n: u32, load: &LinkLoad) -> f64 {
    let per_mb: f64 = load
        .bubbles_ns
        .iter()
        .map(|b| load.task_cost_ns() + b)
        .sum();
    n as f64 * per_mb
}

/// Eq. (4) — stage-level execution with `stages` parallel stages on this
/// link. Each stage `k` carries `m_k` of the link's tasks; running `z_k`
/// stages concurrently over one link multiplies task cost by `z_k` and adds
/// the contention penalty `γ·L(z_k)`. The link finishes with its slowest
/// stage.
pub fn stage_level_time_ns(n: u32, load: &LinkLoad, stages: &[Vec<usize>]) -> f64 {
    assert!(!stages.is_empty(), "need at least one stage");
    let z = stages.len() as u32;
    let penalty = load.params.gamma_ns
        * load.params.contention_penalty(z.max(
            load.params.saturation_tbs, // z_k counts extra concurrency beyond the base TB
        ));
    stages
        .iter()
        .map(|task_idxs| {
            let sum: f64 = task_idxs
                .iter()
                .map(|&j| z as f64 * load.task_cost_ns() + penalty + load.bubbles_ns[j])
                .sum();
            n as f64 * sum
        })
        .fold(0.0, f64::max)
}

/// Eq. (5) — task-level execution: a one-time pipeline fill `t_load`, the
/// contention-free serial stream of `n·m` task invocations, plus only the
/// residual bubbles that pipelining could not mask.
pub fn task_level_time_ns(
    n: u32,
    load: &LinkLoad,
    t_load_ns: f64,
    residual_bubbles_ns: &[f64],
) -> f64 {
    assert!(
        residual_bubbles_ns.len() <= load.m(),
        "m' ≤ m (Eq. 5): residual bubbles cannot exceed original bubbles"
    );
    let stream = n as f64 * load.m() as f64 * load.task_cost_ns();
    let bubbles: f64 = n as f64 * residual_bubbles_ns.iter().sum::<f64>();
    t_load_ns + stream + bubbles
}

/// Eq. (6) — the n→∞ cost ratio `(T_A − base) : (T_S − base) : (T_P − base)`
/// per micro-batch, where `base = m·(α+c·β)` is the irreducible transfer
/// work. Returns the three per-micro-batch *overhead* terms
/// `(Σ B_j, Σ [γL+B_j], Σ B'_j)`; smaller is better.
pub fn asymptotic_overheads(
    load: &LinkLoad,
    stages: &[Vec<usize>],
    residual_bubbles_ns: &[f64],
) -> (f64, f64, f64) {
    let t_a: f64 = load.bubbles_ns.iter().sum();
    let z = stages.len() as u32;
    let penalty = load.params.gamma_ns
        * load
            .params
            .contention_penalty(z.max(load.params.saturation_tbs));
    let t_s: f64 = stages
        .iter()
        .map(|task_idxs| {
            task_idxs
                .iter()
                .map(|&j| penalty + load.bubbles_ns[j])
                .sum::<f64>()
        })
        .fold(0.0, f64::max);
    let t_p: f64 = residual_bubbles_ns.iter().sum();
    (t_a, t_s, t_p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load() -> LinkLoad {
        LinkLoad {
            params: LinkParams::new(25.0, 10.0, 4),
            chunk_bytes: 1 << 20,
            bubbles_ns: vec![20_000.0, 15_000.0, 0.0, 30_000.0],
        }
    }

    #[test]
    fn algorithm_level_scales_linearly_in_n() {
        let l = load();
        let t1 = algorithm_level_time_ns(1, &l);
        let t10 = algorithm_level_time_ns(10, &l);
        assert!((t10 / t1 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn task_level_beats_algorithm_level_for_large_n() {
        let l = load();
        // Pipelining masks all bubbles; fill cost is one full micro-batch.
        let fill = algorithm_level_time_ns(1, &l);
        let n = 64;
        let tp = task_level_time_ns(n, &l, fill, &[]);
        let ta = algorithm_level_time_ns(n, &l);
        assert!(tp < ta, "task-level {tp} must beat algorithm-level {ta}");
    }

    #[test]
    fn task_level_loses_for_tiny_n() {
        // With a single micro-batch the pipeline fill dominates — this is
        // why ResCCL is slightly slower than MSCCL below 16 MB (§5.2).
        let l = load();
        let fill = 2.0 * algorithm_level_time_ns(1, &l);
        let tp = task_level_time_ns(1, &l, fill, &[]);
        let ta = algorithm_level_time_ns(1, &l);
        assert!(tp > ta);
    }

    #[test]
    fn stage_level_pays_contention() {
        let l = load();
        // Two stages, each with half the tasks: fewer bubbles per stage but
        // contention on the shared link.
        let stages = vec![vec![0usize, 1], vec![2usize, 3]];
        let ts = stage_level_time_ns(8, &l, &stages);
        let ta = algorithm_level_time_ns(8, &l);
        // Stage-level is not free: with the penalty term it can exceed
        // the lazy schedule on an already-saturated link.
        assert!(ts > 0.0 && ta > 0.0);
        let (oa, os, op) = asymptotic_overheads(&l, &stages, &[]);
        assert!(op <= oa, "task-level overhead must be ≤ algorithm-level");
        assert!(os > 0.0);
    }

    #[test]
    #[should_panic(expected = "m' ≤ m")]
    fn residual_bubbles_bounded() {
        let l = load();
        task_level_time_ns(1, &l, 0.0, &[1.0, 1.0, 1.0, 1.0, 1.0]);
    }
}
