//! # rescc-sched
//!
//! Primitive-level execution scheduling (§4.3): the **HPDS** scheduler
//! (Algorithm 1), the round-robin baseline of Fig. 10(b), stage
//! partitioning for MSCCL-style stage-level execution, and the analytic
//! cost model of §3 (Eq. 3–6).
//!
//! ```
//! use rescc_lang::{AlgoBuilder, OpType};
//! use rescc_ir::DepDag;
//! use rescc_sched::hpds;
//! use rescc_topology::Topology;
//!
//! let mut b = AlgoBuilder::new("Ring", OpType::AllGather, 8);
//! for r in 0..8u32 {
//!     for step in 0..7u32 {
//!         b.recv(r, (r + 1) % 8, step, (r + 8 - step) % 8);
//!     }
//! }
//! let dag = DepDag::build(&b.build().unwrap(), &Topology::a100(1, 8)).unwrap();
//! let schedule = hpds(&dag);
//! schedule.validate(&dag).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analytic;
mod flat;
mod hpds;
mod reference;
mod rr;
mod schedule;
mod stage;

pub use analytic::{
    algorithm_level_time_ns, asymptotic_overheads, stage_level_time_ns, task_level_time_ns,
    LinkLoad,
};
pub use hpds::{hpds, hpds_with_threads};
pub use reference::{hpds_reference, round_robin_reference};
pub use rr::{round_robin, round_robin_with_threads};
pub use schedule::Schedule;
pub use stage::StagePartition;
