//! Reference (seed) scheduler implementations.
//!
//! These are the original straightforward transcriptions of Algorithm 1
//! (HPDS) and the round-robin baseline: pointer-chasing `HashMap` loads,
//! an `O(n_chunks)` linear scan per chunk selection, and a full rescan of
//! every chunk's pending list on each visit. They are kept verbatim for
//! two jobs:
//!
//! 1. **Oracle for byte-identity property tests** — the rearchitected
//!    schedulers in [`crate::hpds`]/[`crate::rr`] must reproduce these
//!    schedules bit-for-bit on every input, for every thread count.
//! 2. **Serial baseline for the compile-time benchmarks** — the
//!    `parallel_speedup` column of `BENCH_compile.json` measures the
//!    rearchitected pipeline against these.
//!
//! Do not optimize this module; its value is being obviously correct.

use crate::schedule::Schedule;
use rescc_ir::{DepDag, TaskId};
use rescc_topology::{ChunkId, ResourceId};
use std::collections::HashMap;

/// The seed HPDS implementation (see module docs). Semantically identical
/// to [`crate::hpds`], asymptotically slower.
pub fn hpds_reference(dag: &DepDag) -> Schedule {
    let n_chunks = dag.n_chunks() as usize;
    let n = dag.len();

    // Remaining-predecessor counts drive "without data dependency".
    let mut remaining_preds: Vec<u32> = (0..n)
        .map(|i| dag.preds(TaskId::new(i as u32)).len() as u32)
        .collect();
    let mut scheduled = vec![false; n];
    // Per-chunk cursor over `dag.chunk_tasks` is not enough (tasks free up
    // out of order), so track per-chunk unscheduled sets as Vecs.
    let mut chunk_pending: Vec<Vec<TaskId>> = (0..n_chunks)
        .map(|c| dag.chunk_tasks(ChunkId::new(c as u32)).to_vec())
        .collect();

    // Priority per chunk: starts at 0, decremented each time the chunk
    // contributes a NodeList (line 20). Selection = max priority among
    // flagged chunks, ties broken by chunk id for determinism.
    let mut priority: Vec<i64> = vec![0; n_chunks];

    let mut remaining = n;
    let mut sub_pipelines: Vec<Vec<TaskId>> = Vec::new();

    while remaining > 0 {
        // Line 6-7: start a new sub-pipeline with all flags set.
        let mut pc: Vec<TaskId> = Vec::new();
        let mut pc_load: HashMap<ResourceId, u32> = HashMap::new();
        let mut flags: Vec<bool> = (0..n_chunks)
            .map(|c| !chunk_pending[c].is_empty())
            .collect();

        // Line 8: loop until no flagged chunk remains.
        while let Some(c) = select_chunk(&flags, &priority) {
            // Lines 10-15: gather the chunk's tasks that are data-free and
            // communication-compatible with the current sub-pipeline.
            let mut node_list: Vec<TaskId> = Vec::new();
            let mut claimed: HashMap<ResourceId, u32> = HashMap::new();
            for &tid in &chunk_pending[c] {
                if remaining_preds[tid.index()] != 0 {
                    continue;
                }
                // Communication dependency: a resource conflicts once its
                // concurrent load would exceed its saturation (the Eq. 1
                // contention threshold), not at the first sharing.
                let res = dag.task(tid).conflict;
                let conflict = res.iter().any(|r| {
                    let load = pc_load.get(&r).copied().unwrap_or(0)
                        + claimed.get(&r).copied().unwrap_or(0);
                    load >= dag.conflict_limit(r)
                });
                if !conflict {
                    node_list.push(tid);
                    for r in res.iter() {
                        *claimed.entry(r).or_insert(0) += 1;
                    }
                }
            }

            if node_list.is_empty() {
                // Lines 16-17: nothing usable — clear the flag.
                flags[c] = false;
            } else {
                // Lines 18-23: insert, decay priority, update the DAG.
                for &tid in &node_list {
                    scheduled[tid.index()] = true;
                    for &s in dag.succs(tid) {
                        remaining_preds[s.index()] -= 1;
                    }
                }
                chunk_pending[c].retain(|t| !scheduled[t.index()]);
                remaining -= node_list.len();
                for (r, n) in claimed {
                    *pc_load.entry(r).or_insert(0) += n;
                }
                pc.extend(node_list);
                priority[c] -= 1;
                if chunk_pending[c].is_empty() {
                    flags[c] = false;
                }
            }
        }

        debug_assert!(!pc.is_empty(), "sub-pipeline made no progress");
        sub_pipelines.push(pc);
    }

    Schedule {
        sub_pipelines,
        policy: "hpds".into(),
    }
}

/// Line 9: `Q.GetHighestWithFlag(F)` — the flagged chunk with the highest
/// priority; ties resolved by lowest chunk id to keep runs deterministic.
fn select_chunk(flags: &[bool], priority: &[i64]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for c in 0..flags.len() {
        if !flags[c] {
            continue;
        }
        match best {
            None => best = Some(c),
            Some(b) if priority[c] > priority[b] => best = Some(c),
            _ => {}
        }
    }
    best
}

/// The seed round-robin implementation (see module docs). Semantically
/// identical to [`crate::round_robin`], asymptotically slower.
pub fn round_robin_reference(dag: &DepDag) -> Schedule {
    let n_chunks = dag.n_chunks() as usize;
    let n = dag.len();

    let mut remaining_preds: Vec<u32> = (0..n)
        .map(|i| dag.preds(TaskId::new(i as u32)).len() as u32)
        .collect();
    let mut scheduled = vec![false; n];
    let mut chunk_pending: Vec<Vec<TaskId>> = (0..n_chunks)
        .map(|c| dag.chunk_tasks(ChunkId::new(c as u32)).to_vec())
        .collect();

    let mut remaining = n;
    let mut sub_pipelines: Vec<Vec<TaskId>> = Vec::new();

    while remaining > 0 {
        let mut pc: Vec<TaskId> = Vec::new();
        let mut pc_load: HashMap<ResourceId, u32> = HashMap::new();
        let mut progressed = true;
        // Keep cycling the immutable chunk order until a full pass adds
        // nothing; then seal the sub-pipeline.
        while progressed {
            progressed = false;
            // Range loop: the body also mutates `chunk_pending[c]`.
            #[allow(clippy::needless_range_loop)]
            for c in 0..n_chunks {
                let mut node_list: Vec<TaskId> = Vec::new();
                let mut claimed: HashMap<ResourceId, u32> = HashMap::new();
                for &tid in &chunk_pending[c] {
                    if remaining_preds[tid.index()] != 0 {
                        continue;
                    }
                    let res = dag.task(tid).conflict;
                    let conflict = res.iter().any(|r| {
                        let load = pc_load.get(&r).copied().unwrap_or(0)
                            + claimed.get(&r).copied().unwrap_or(0);
                        load >= dag.conflict_limit(r)
                    });
                    if !conflict {
                        node_list.push(tid);
                        for r in res.iter() {
                            *claimed.entry(r).or_insert(0) += 1;
                        }
                    }
                }
                if node_list.is_empty() {
                    continue;
                }
                for &tid in &node_list {
                    scheduled[tid.index()] = true;
                    for &s in dag.succs(tid) {
                        remaining_preds[s.index()] -= 1;
                    }
                }
                chunk_pending[c].retain(|t| !scheduled[t.index()]);
                remaining -= node_list.len();
                for (r, n) in claimed {
                    *pc_load.entry(r).or_insert(0) += n;
                }
                pc.extend(node_list);
                progressed = true;
            }
        }
        debug_assert!(!pc.is_empty(), "RR sub-pipeline made no progress");
        sub_pipelines.push(pc);
    }

    Schedule {
        sub_pipelines,
        policy: "rr".into(),
    }
}
