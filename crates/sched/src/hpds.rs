//! Hierarchical Priority-based Dynamic Scheduling — Algorithm 1 of the
//! paper, implemented line-for-line.
//!
//! Given the dependency DAG `G`, HPDS builds the global pipeline `P_r` as a
//! sequence of sub-pipelines `P_c`. Each inner round picks the
//! highest-priority chunk whose flag is still set, extracts its tasks that
//! are free of data dependencies *and* compatible (no shared contention
//! resource) with everything already placed in the current sub-pipeline,
//! and inserts them. Scheduling a chunk lowers its priority (dynamic load
//! balancing: underutilized chunks bubble up), and a chunk with nothing to
//! contribute has its flag cleared. When every flag is false the
//! sub-pipeline is sealed and appended to `P_r`; the outer loop repeats
//! until the DAG is drained.

use crate::schedule::Schedule;
use rescc_ir::{DepDag, TaskId};
use rescc_topology::{ChunkId, ResourceId};
use std::collections::HashMap;

/// Run HPDS over a dependency DAG, producing a validated schedule.
pub fn hpds(dag: &DepDag) -> Schedule {
    let n_chunks = dag.n_chunks() as usize;
    let n = dag.len();

    // Remaining-predecessor counts drive "without data dependency".
    let mut remaining_preds: Vec<u32> = (0..n)
        .map(|i| dag.preds(TaskId::new(i as u32)).len() as u32)
        .collect();
    let mut scheduled = vec![false; n];
    // Per-chunk cursor over `dag.chunk_tasks` is not enough (tasks free up
    // out of order), so track per-chunk unscheduled sets as Vecs.
    let mut chunk_pending: Vec<Vec<TaskId>> = (0..n_chunks)
        .map(|c| dag.chunk_tasks(ChunkId::new(c as u32)).to_vec())
        .collect();

    // Priority per chunk: starts at 0, decremented each time the chunk
    // contributes a NodeList (line 20). Selection = max priority among
    // flagged chunks, ties broken by chunk id for determinism.
    let mut priority: Vec<i64> = vec![0; n_chunks];

    let mut remaining = n;
    let mut sub_pipelines: Vec<Vec<TaskId>> = Vec::new();

    while remaining > 0 {
        // Line 6-7: start a new sub-pipeline with all flags set.
        let mut pc: Vec<TaskId> = Vec::new();
        let mut pc_load: HashMap<ResourceId, u32> = HashMap::new();
        let mut flags: Vec<bool> = (0..n_chunks)
            .map(|c| !chunk_pending[c].is_empty())
            .collect();

        // Line 8: loop until no flagged chunk remains.
        while let Some(c) = select_chunk(&flags, &priority) {
            // Lines 10-15: gather the chunk's tasks that are data-free and
            // communication-compatible with the current sub-pipeline.
            let mut node_list: Vec<TaskId> = Vec::new();
            let mut claimed: HashMap<ResourceId, u32> = HashMap::new();
            for &tid in &chunk_pending[c] {
                if remaining_preds[tid.index()] != 0 {
                    continue;
                }
                // Communication dependency: a resource conflicts once its
                // concurrent load would exceed its saturation (the Eq. 1
                // contention threshold), not at the first sharing.
                let res = dag.task(tid).conflict;
                let conflict = res.iter().any(|r| {
                    let load = pc_load.get(&r).copied().unwrap_or(0)
                        + claimed.get(&r).copied().unwrap_or(0);
                    load >= dag.conflict_limit(r)
                });
                if !conflict {
                    node_list.push(tid);
                    for r in res.iter() {
                        *claimed.entry(r).or_insert(0) += 1;
                    }
                }
            }

            if node_list.is_empty() {
                // Lines 16-17: nothing usable — clear the flag.
                flags[c] = false;
            } else {
                // Lines 18-23: insert, decay priority, update the DAG.
                for &tid in &node_list {
                    scheduled[tid.index()] = true;
                    for &s in dag.succs(tid) {
                        remaining_preds[s.index()] -= 1;
                    }
                }
                chunk_pending[c].retain(|t| !scheduled[t.index()]);
                remaining -= node_list.len();
                for (r, n) in claimed {
                    *pc_load.entry(r).or_insert(0) += n;
                }
                pc.extend(node_list);
                priority[c] -= 1;
                if chunk_pending[c].is_empty() {
                    flags[c] = false;
                }
            }
        }

        debug_assert!(!pc.is_empty(), "sub-pipeline made no progress");
        sub_pipelines.push(pc);
    }

    Schedule {
        sub_pipelines,
        policy: "hpds".into(),
    }
}

/// Line 9: `Q.GetHighestWithFlag(F)` — the flagged chunk with the highest
/// priority; ties resolved by lowest chunk id to keep runs deterministic.
fn select_chunk(flags: &[bool], priority: &[i64]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for c in 0..flags.len() {
        if !flags[c] {
            continue;
        }
        match best {
            None => best = Some(c),
            Some(b) if priority[c] > priority[b] => best = Some(c),
            _ => {}
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescc_lang::{AlgoBuilder, OpType};
    use rescc_topology::Topology;

    fn ring_ag(n: u32) -> rescc_lang::AlgoSpec {
        let mut b = AlgoBuilder::new("Ring", OpType::AllGather, n);
        for r in 0..n {
            for step in 0..n - 1 {
                b.recv(r, (r + 1) % n, step, (r + n - step) % n);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn hpds_schedules_every_task_once() {
        let topo = Topology::a100(1, 8);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        let s = hpds(&dag);
        assert_eq!(s.n_tasks(), dag.len());
        s.validate(&dag).unwrap();
    }

    #[test]
    fn hpds_valid_on_multi_node() {
        let topo = Topology::a100(2, 8);
        let dag = DepDag::build(&ring_ag(16), &topo).unwrap();
        let s = hpds(&dag);
        s.validate(&dag).unwrap();
    }

    #[test]
    fn single_node_ring_fits_one_sub_pipeline() {
        // In a single-node ring every task of a chunk chain uses a distinct
        // GPU TX/RX pair, so the chains pipeline into very few
        // sub-pipelines. The schedule must at least beat one-task-per-sub.
        let topo = Topology::a100(1, 8);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        let s = hpds(&dag);
        assert!(
            s.sub_pipelines.len() < dag.len() / 2,
            "HPDS produced {} sub-pipelines for {} tasks",
            s.sub_pipelines.len(),
            dag.len()
        );
    }

    #[test]
    fn hpds_is_deterministic() {
        let topo = Topology::a100(2, 4);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        assert_eq!(hpds(&dag), hpds(&dag));
    }

    #[test]
    fn priority_spreads_chunks_across_rounds() {
        // After a chunk contributes, its priority drops, so other chunks
        // get picked first in subsequent rounds. Verify the first
        // sub-pipeline touches more than one chunk for a ring.
        let topo = Topology::a100(1, 8);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        let s = hpds(&dag);
        let chunks: std::collections::HashSet<u32> = s.sub_pipelines[0]
            .iter()
            .map(|t| dag.task(*t).chunk.0)
            .collect();
        assert!(chunks.len() > 1);
    }
}
