//! Hierarchical Priority-based Dynamic Scheduling — Algorithm 1 of the
//! paper.
//!
//! Given the dependency DAG `G`, HPDS builds the global pipeline `P_r` as a
//! sequence of sub-pipelines `P_c`. Each inner round picks the
//! highest-priority chunk whose flag is still set, extracts its tasks that
//! are free of data dependencies *and* compatible (no shared contention
//! resource) with everything already placed in the current sub-pipeline,
//! and inserts them. Scheduling a chunk lowers its priority (dynamic load
//! balancing: underutilized chunks bubble up), and a chunk with nothing to
//! contribute has its flag cleared. When every flag is false the
//! sub-pipeline is sealed and appended to `P_r`; the outer loop repeats
//! until the DAG is drained.
//!
//! This implementation is the rearchitected fast path (see
//! [`crate::flat`] for the state layout and the speculative wave
//! parallelism): chunk selection is a lazy max-heap instead of a linear
//! scan, and because priorities only ever decay, consecutive selections
//! form **waves** — every flagged chunk at the current maximum priority,
//! in ascending chunk id — which are exactly the parallel work units.
//! Output is bit-identical to [`crate::hpds_reference`] for every thread
//! count (property-tested).

use crate::flat::FlatState;
use crate::schedule::Schedule;
use rescc_ir::{DepDag, TaskId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Run HPDS over a dependency DAG, producing a validated schedule.
pub fn hpds(dag: &DepDag) -> Schedule {
    hpds_with_threads(dag, 1)
}

/// [`hpds`] with chunk gathering fanned out over `threads` worker threads
/// (speculative wave execution; identical output for any thread count).
pub fn hpds_with_threads(dag: &DepDag, threads: usize) -> Schedule {
    let n_chunks = dag.n_chunks() as usize;
    let mut st = FlatState::new(dag);
    let mut priority: Vec<i64> = vec![0; n_chunks];
    let mut sub_pipelines: Vec<Vec<TaskId>> = Vec::new();

    // Line 9's `Q.GetHighestWithFlag(F)` as a max-heap of
    // `(priority, Reverse(chunk))`: highest priority first, ties broken by
    // lowest chunk id. Priorities only decay, and they decay exactly when
    // a chunk is popped and contributes, so each chunk has at most one
    // live entry and no stale entries can exist within a round.
    let mut heap: BinaryHeap<(i64, Reverse<u32>)> = BinaryHeap::new();
    let mut wave: Vec<u32> = Vec::new();
    let mut contributed: Vec<bool> = Vec::new();

    while st.remaining > 0 {
        // Lines 6-7: start a new sub-pipeline with all flags set. Flags
        // are implicit: a chunk is flagged iff it sits in the heap.
        let mut pc: Vec<TaskId> = Vec::new();
        st.start_sub_pipeline();
        heap.clear();
        for (c, &p) in priority.iter().enumerate() {
            if st.has_pending(c) {
                heap.push((p, Reverse(c as u32)));
            }
        }

        // Line 8: loop until no flagged chunk remains. One iteration
        // drains a wave: every flagged chunk at the current maximum
        // priority, in ascending id — the order the serial selection rule
        // would visit them.
        while let Some(&(p, _)) = heap.peek() {
            wave.clear();
            while let Some(&(p2, Reverse(c))) = heap.peek() {
                if p2 != p {
                    break;
                }
                heap.pop();
                wave.push(c);
            }
            st.process_wave(&wave, threads, &mut pc, &mut contributed);
            for (i, &c) in wave.iter().enumerate() {
                if contributed[i] {
                    // Lines 18-23: inserted — decay priority, keep the
                    // flag while the chunk still has unscheduled tasks.
                    priority[c as usize] -= 1;
                    if st.has_pending(c as usize) {
                        heap.push((priority[c as usize], Reverse(c)));
                    }
                }
                // Lines 16-17: nothing usable — flag stays cleared (the
                // chunk is simply not re-pushed this round).
            }
        }

        debug_assert!(!pc.is_empty(), "sub-pipeline made no progress");
        sub_pipelines.push(pc);
    }

    Schedule {
        sub_pipelines,
        policy: "hpds".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::hpds_reference;
    use rescc_lang::{AlgoBuilder, OpType};
    use rescc_topology::Topology;

    fn ring_ag(n: u32) -> rescc_lang::AlgoSpec {
        let mut b = AlgoBuilder::new("Ring", OpType::AllGather, n);
        for r in 0..n {
            for step in 0..n - 1 {
                b.recv(r, (r + 1) % n, step, (r + n - step) % n);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn hpds_schedules_every_task_once() {
        let topo = Topology::a100(1, 8);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        let s = hpds(&dag);
        assert_eq!(s.n_tasks(), dag.len());
        s.validate(&dag).unwrap();
    }

    #[test]
    fn hpds_valid_on_multi_node() {
        let topo = Topology::a100(2, 8);
        let dag = DepDag::build(&ring_ag(16), &topo).unwrap();
        let s = hpds(&dag);
        s.validate(&dag).unwrap();
    }

    #[test]
    fn single_node_ring_fits_one_sub_pipeline() {
        // In a single-node ring every task of a chunk chain uses a distinct
        // GPU TX/RX pair, so the chains pipeline into very few
        // sub-pipelines. The schedule must at least beat one-task-per-sub.
        let topo = Topology::a100(1, 8);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        let s = hpds(&dag);
        assert!(
            s.sub_pipelines.len() < dag.len() / 2,
            "HPDS produced {} sub-pipelines for {} tasks",
            s.sub_pipelines.len(),
            dag.len()
        );
    }

    #[test]
    fn hpds_is_deterministic() {
        let topo = Topology::a100(2, 4);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        assert_eq!(hpds(&dag), hpds(&dag));
    }

    #[test]
    fn hpds_matches_reference() {
        for (nodes, gpus, ranks) in [(1, 8, 8), (2, 4, 8), (2, 8, 16), (4, 8, 32)] {
            let topo = Topology::a100(nodes, gpus);
            let dag = DepDag::build(&ring_ag(ranks), &topo).unwrap();
            let want = hpds_reference(&dag);
            assert_eq!(hpds(&dag), want, "serial flat vs reference @{ranks}");
            for threads in [2, 3, 8] {
                assert_eq!(
                    hpds_with_threads(&dag, threads),
                    want,
                    "{threads}-thread vs reference @{ranks}"
                );
            }
        }
    }

    #[test]
    fn priority_spreads_chunks_across_rounds() {
        // After a chunk contributes, its priority drops, so other chunks
        // get picked first in subsequent rounds. Verify the first
        // sub-pipeline touches more than one chunk for a ring.
        let topo = Topology::a100(1, 8);
        let dag = DepDag::build(&ring_ag(8), &topo).unwrap();
        let s = hpds(&dag);
        let chunks: std::collections::HashSet<u32> = s.sub_pipelines[0]
            .iter()
            .map(|t| dag.task(*t).chunk.0)
            .collect();
        assert!(chunks.len() > 1);
    }
}
