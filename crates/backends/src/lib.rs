//! # rescc-backends
//!
//! The three collective-communication backends the paper compares, all
//! executing on the same simulated cluster so differences come purely from
//! backend design:
//!
//! | backend | execution granularity | TB allocation | runtime | release |
//! |---|---|---|---|---|
//! | [`NcclBackend`] | algorithm-level (lazy, barrier per micro-batch) | connection-based × channels | direct kernel | rigid |
//! | [`MscclBackend`] | stage-level (barrier per stage per micro-batch) | connection-based × channels | **interpreter** | rigid |
//! | [`RescclBackend`] | task-level (HPDS sub-pipelines, no barrier) | state-based (merged) | generated lightweight kernel | early release |
//!
//! Every backend consumes the same [`AlgoSpec`] and produces a [`RunReport`]
//! with identical metrics, which the benchmark harness turns into the
//! paper's tables and figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod communicator;

pub use communicator::{Communicator, FaultPolicy};

use rescc_alloc::TbAllocation;
use rescc_ir::{DepDag, MicroBatchPlan, TaskId};
use rescc_kernel::{ExecMode, KernelProgram, LoopOrder};
use rescc_lang::AlgoSpec;
use rescc_sched::{hpds, round_robin, Schedule, StagePartition};
use rescc_sim::{simulate, SimConfig, SimError, SimReport, SimResult};
use rescc_topology::Topology;

/// The paper's default chunk (primitive transfer unit) size: 1 MB.
pub const DEFAULT_CHUNK_BYTES: u64 = 1 << 20;

/// What the watchdog did in response to one recovery trigger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Transient fault: the attempt was restarted from scratch.
    Retry,
    /// Permanent fault: the dead resource was masked and the cached plan
    /// rerouted + spliced incrementally (`Compiler::recompile_delta`).
    DeltaRecompile,
    /// Permanent fault: the splice was denied and the degraded plan was
    /// compiled from scratch at the next dispatch.
    FullRecompile,
    /// The attempt's fault frontier was folded in; the next attempt
    /// resumed from it (residual plan) instead of restarting.
    Resume,
    /// A masked resource was restored: the watchdog un-masked it and
    /// failed back to the healthier plan at the collective boundary.
    Heal,
}

impl RecoveryAction {
    /// Stable lowercase name (used in journals and trace exports).
    pub fn as_str(&self) -> &'static str {
        match self {
            RecoveryAction::Retry => "retry",
            RecoveryAction::DeltaRecompile => "delta-recompile",
            RecoveryAction::FullRecompile => "full-recompile",
            RecoveryAction::Resume => "resume",
            RecoveryAction::Heal => "heal",
        }
    }
}

/// One entry in the watchdog's per-attempt recovery journal.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryEvent {
    /// Recovery trigger number within the call (1-based; 0 for healing,
    /// which happens before the first attempt).
    pub attempt: u32,
    /// Short human-readable cause (e.g. `"transient r12 down"`,
    /// `"deadline"`, `"r7 dead"`, `"r7 restored"`).
    pub cause: String,
    /// Sim time of the trigger, ns since the call started (failed-attempt
    /// time already elapsed included).
    pub at_ns: f64,
    /// What the watchdog did about it.
    pub action: RecoveryAction,
}

/// What the [`Communicator`]'s watchdog/recovery layer did to complete a
/// collective on a faulty fabric.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryStats {
    /// Attempts replayed after transient faults (backoff in sim time).
    pub retries: u32,
    /// Recompiles against a degraded topology after permanent faults.
    pub recompiles: u32,
    /// The subset of [`recompiles`](Self::recompiles) served incrementally
    /// by rerouting and splicing the cached plan
    /// (`Compiler::recompile_delta`) instead of compiling from scratch.
    pub delta_recompiles: u32,
    /// Attempts that resumed from an accumulated fault frontier (residual
    /// plan) instead of restarting from scratch.
    pub resumes: u32,
    /// Masked resources un-masked because their fault schedule no longer
    /// declares them permanently dead (fail-back to the healthier plan).
    pub heals: u32,
    /// Sim time burned by failed attempts and backoff before the
    /// successful attempt started, ns.
    pub recovery_ns: f64,
    /// The final health mask: raw resource indices masked as dead.
    pub dead_resources: Vec<u32>,
    /// Fingerprint of the plan that completed (distinct from the healthy
    /// plan's whenever the mask is non-empty).
    pub plan_fingerprint: u64,
    /// Sanitize-phase findings on the plan that completed. Degraded plans
    /// are re-analyzed after every post-fault recompile; a recompiled plan
    /// carrying `Error`-severity findings is refused before resume.
    pub lint_diagnostics: u32,
    /// Per-trigger journal of what the watchdog saw and did, in order.
    pub journal: Vec<RecoveryEvent>,
}

/// Result of running one collective call through a backend.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Backend name.
    pub backend: String,
    /// Algorithm name.
    pub algo: String,
    /// Per-rank buffer size synchronized.
    pub buffer_bytes: u64,
    /// Total TBs launched across the cluster.
    pub total_tbs: usize,
    /// TBs on the busiest rank (the `#TB` metric of Table 3).
    pub max_rank_tbs: usize,
    /// The underlying simulation report.
    pub sim: SimReport,
    /// Plan-cache counters at the time of this run, when the call went
    /// through a caching dispatcher ([`Communicator`]); `None` for direct
    /// backend calls, which always compile.
    pub cache: Option<rescc_core::CacheStats>,
    /// Watchdog/recovery accounting when the call went through the
    /// [`Communicator`] with faults or a deadline engaged; `None` for
    /// plain healthy-fabric runs.
    pub recovery: Option<RecoveryStats>,
    /// Whether the simulated completion undercut the plan's certified
    /// α–β–γ makespan lower bound — `Some(true)` flags a cost-model/engine
    /// disagreement that the bench harness escalates to a warning.
    /// Populated only for fresh, fault-free, non-resumed [`Communicator`]
    /// dispatches (the certificate is computed against the healthy plan's
    /// routes and full task set); `None` everywhere else, including the
    /// raw [`Backend`] implementations, which bypass the sanitize phase.
    pub certificate_undercut: Option<bool>,
    /// Cross-layer spans and counters (compiler phases, cache traffic,
    /// watchdog activity) when the call went through the
    /// [`Communicator`] with
    /// [`with_observability`](Communicator::with_observability); `None`
    /// otherwise. Wall-time spans make this field nondeterministic, so
    /// replay-stable consumers must leave observability off.
    pub obs: Option<rescc_obs::ObsStats>,
}

impl RunReport {
    /// Algorithm bandwidth in GB/s (buffer size / completion time).
    pub fn algbw_gbps(&self) -> f64 {
        self.sim.algo_bandwidth_gbps(self.buffer_bytes)
    }

    /// End-to-end completion including sim time burned on failed attempts
    /// and backoff (equals `sim.completion_ns` on a clean run).
    pub fn total_completion_ns(&self) -> f64 {
        self.sim.completion_ns + self.recovery.as_ref().map_or(0.0, |r| r.recovery_ns)
    }
}

/// A collective communication backend: turns an algorithm into an
/// executable plan and runs it on the simulated cluster.
pub trait Backend {
    /// Backend name for reports.
    fn name(&self) -> &str;

    /// Run one collective call of `buffer_bytes` per rank, moving
    /// `chunk_bytes` per primitive invocation, with data validation.
    fn run(
        &self,
        spec: &AlgoSpec,
        topo: &Topology,
        buffer_bytes: u64,
        chunk_bytes: u64,
    ) -> SimResult<RunReport>;

    /// Run with data validation disabled (large sweeps).
    fn run_unchecked(
        &self,
        spec: &AlgoSpec,
        topo: &Topology,
        buffer_bytes: u64,
        chunk_bytes: u64,
    ) -> SimResult<RunReport>;
}

/// Schedule in plain declaration/step order: sub-pipeline `s` holds the
/// tasks of step `s`. This is how backends without primitive-level
/// scheduling sequence their work — no communication-dependency awareness.
pub fn by_step_schedule(dag: &DepDag) -> Schedule {
    let max_step = dag.tasks().iter().map(|t| t.step.0).max().unwrap_or(0);
    let mut sub_pipelines: Vec<Vec<TaskId>> = vec![Vec::new(); max_step as usize + 1];
    for t in dag.tasks() {
        sub_pipelines[t.step.0 as usize].push(t.id);
    }
    sub_pipelines.retain(|sp| !sp.is_empty());
    Schedule {
        sub_pipelines,
        policy: "by-step".into(),
    }
}

fn finish(
    backend: &str,
    spec: &AlgoSpec,
    buffer_bytes: u64,
    alloc: &TbAllocation,
    sim: SimReport,
) -> RunReport {
    RunReport {
        backend: backend.to_string(),
        algo: spec.name().to_string(),
        buffer_bytes,
        total_tbs: alloc.total_tbs(),
        max_rank_tbs: alloc.max_rank_tbs(),
        sim,
        cache: None,
        recovery: None,
        certificate_undercut: None,
        obs: None,
    }
}

/// The NCCL-model backend: lazy algorithm-level execution with
/// connection-based TB allocation and rigid release.
#[derive(Clone, Debug)]
pub struct NcclBackend {
    /// Parallel channels per connection (NCCL's nChannels).
    pub n_channels: u32,
}

impl Default for NcclBackend {
    fn default() -> Self {
        Self { n_channels: 4 }
    }
}

impl NcclBackend {
    fn run_inner(
        &self,
        spec: &AlgoSpec,
        topo: &Topology,
        buffer_bytes: u64,
        chunk_bytes: u64,
        validate: bool,
    ) -> SimResult<RunReport> {
        let dag = DepDag::build(spec, topo).map_err(|e| SimError::new(e.to_string()))?;
        let sched = by_step_schedule(&dag);
        let alloc = TbAllocation::connection_based(&dag, &sched, self.n_channels);
        let prog = KernelProgram::generate(
            spec.name(),
            &dag,
            &alloc,
            LoopOrder::MicroBatchMajor,
            ExecMode::DirectKernel,
        )
        .with_global_barrier(dag.len())
        .with_barrier_stride(self.n_channels);
        let plan = MicroBatchPlan::plan(buffer_bytes, spec.n_chunks(), chunk_bytes);
        let cfg = if validate {
            SimConfig::rigid()
        } else {
            SimConfig::rigid().without_validation()
        };
        let sim = simulate(topo, &dag, &prog, &plan, spec.op(), &cfg)?;
        Ok(finish("nccl", spec, buffer_bytes, &alloc, sim))
    }
}

impl Backend for NcclBackend {
    fn name(&self) -> &str {
        "nccl"
    }

    fn run(
        &self,
        spec: &AlgoSpec,
        topo: &Topology,
        buffer_bytes: u64,
        chunk_bytes: u64,
    ) -> SimResult<RunReport> {
        self.run_inner(spec, topo, buffer_bytes, chunk_bytes, true)
    }

    fn run_unchecked(
        &self,
        spec: &AlgoSpec,
        topo: &Topology,
        buffer_bytes: u64,
        chunk_bytes: u64,
    ) -> SimResult<RunReport> {
        self.run_inner(spec, topo, buffer_bytes, chunk_bytes, false)
    }
}

/// The MSCCL-model backend: stage-level execution (manual stage division),
/// per-stage channels, runtime interpreter, rigid release.
#[derive(Clone, Debug)]
pub struct MscclBackend {
    /// Channels per connection.
    pub n_channels: u32,
    /// Number of stages the algorithm is manually divided into.
    pub n_stages: u32,
    /// Interpreter overhead per primitive invocation (ns).
    pub interpreter_overhead_ns: f64,
}

impl Default for MscclBackend {
    fn default() -> Self {
        Self {
            n_channels: 4,
            n_stages: 2,
            interpreter_overhead_ns: 9_000.0,
        }
    }
}

impl MscclBackend {
    fn run_inner(
        &self,
        spec: &AlgoSpec,
        topo: &Topology,
        buffer_bytes: u64,
        chunk_bytes: u64,
        validate: bool,
    ) -> SimResult<RunReport> {
        let dag = DepDag::build(spec, topo).map_err(|e| SimError::new(e.to_string()))?;
        let sched = by_step_schedule(&dag);
        let alloc = TbAllocation::connection_based(&dag, &sched, self.n_channels);
        // Stage-level barrier: each stage iterates its micro-batches
        // lazily; stages pipeline against each other.
        let stages = StagePartition::by_steps(&dag, self.n_stages);
        stages
            .validate(&dag)
            .map_err(|e| SimError::new(e.to_string()))?;
        let groups: Vec<u32> = stages
            .stage_of(dag.len())
            .into_iter()
            .map(|s| s as u32)
            .collect();
        let prog = KernelProgram::generate(
            spec.name(),
            &dag,
            &alloc,
            LoopOrder::MicroBatchMajor,
            ExecMode::Interpreter {
                per_invocation_overhead_ns: self.interpreter_overhead_ns,
            },
        )
        .with_barrier_groups(groups)
        .with_barrier_stride(self.n_channels);
        let plan = MicroBatchPlan::plan(buffer_bytes, spec.n_chunks(), chunk_bytes);
        let cfg = if validate {
            SimConfig::rigid()
        } else {
            SimConfig::rigid().without_validation()
        };
        let sim = simulate(topo, &dag, &prog, &plan, spec.op(), &cfg)?;
        Ok(finish("msccl", spec, buffer_bytes, &alloc, sim))
    }
}

impl Backend for MscclBackend {
    fn name(&self) -> &str {
        "msccl"
    }

    fn run(
        &self,
        spec: &AlgoSpec,
        topo: &Topology,
        buffer_bytes: u64,
        chunk_bytes: u64,
    ) -> SimResult<RunReport> {
        self.run_inner(spec, topo, buffer_bytes, chunk_bytes, true)
    }

    fn run_unchecked(
        &self,
        spec: &AlgoSpec,
        topo: &Topology,
        buffer_bytes: u64,
        chunk_bytes: u64,
    ) -> SimResult<RunReport> {
        self.run_inner(spec, topo, buffer_bytes, chunk_bytes, false)
    }
}

/// Scheduling policy for the ResCCL backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// Hierarchical priority-based dynamic scheduling (Algorithm 1).
    Hpds,
    /// Round-robin baseline (Fig. 10b).
    RoundRobin,
}

/// The ResCCL backend: primitive-level scheduling (HPDS), state-based TB
/// allocation, generated lightweight kernels, early release.
#[derive(Clone, Debug)]
pub struct RescclBackend {
    /// Scheduler to use (HPDS by default; RR for the Fig. 10b ablation).
    pub scheduler: SchedulerPolicy,
    /// Apply the `recvCopySend`/`recvReduceSend` fusion pass to the
    /// generated kernels (off by default — an optional optimization beyond
    /// the paper's evaluated configuration).
    pub fuse_primitives: bool,
}

impl Default for RescclBackend {
    fn default() -> Self {
        Self {
            scheduler: SchedulerPolicy::Hpds,
            fuse_primitives: false,
        }
    }
}

impl RescclBackend {
    /// The round-robin ablation variant.
    pub fn round_robin() -> Self {
        Self {
            scheduler: SchedulerPolicy::RoundRobin,
            ..Self::default()
        }
    }

    /// Enable primitive fusion.
    pub fn with_fusion() -> Self {
        Self {
            fuse_primitives: true,
            ..Self::default()
        }
    }

    fn run_inner(
        &self,
        spec: &AlgoSpec,
        topo: &Topology,
        buffer_bytes: u64,
        chunk_bytes: u64,
        validate: bool,
    ) -> SimResult<RunReport> {
        let dag = DepDag::build(spec, topo).map_err(|e| SimError::new(e.to_string()))?;
        let sched = match self.scheduler {
            SchedulerPolicy::Hpds => hpds(&dag),
            SchedulerPolicy::RoundRobin => round_robin(&dag),
        };
        debug_assert!(sched.validate(&dag).is_ok());
        let alloc = if self.fuse_primitives {
            TbAllocation::state_based_chained(&dag, &sched)
        } else {
            TbAllocation::state_based(&dag, &sched)
        };
        // Fused programs keep the slot-major loop: the simulator issues the
        // fused forward asynchronously, so each recv→send pair pipelines
        // across micro-batches exactly like its unfused counterpart while
        // occupying half the TBs.
        let loop_order = LoopOrder::SlotMajor;
        let mut prog = KernelProgram::generate(
            spec.name(),
            &dag,
            &alloc,
            loop_order,
            ExecMode::DirectKernel,
        );
        if self.fuse_primitives {
            rescc_kernel::fuse(&mut prog, &dag);
        }
        let plan = MicroBatchPlan::plan(buffer_bytes, spec.n_chunks(), chunk_bytes);
        let cfg = if validate {
            SimConfig::default()
        } else {
            SimConfig::default().without_validation()
        };
        let sim = simulate(topo, &dag, &prog, &plan, spec.op(), &cfg)?;
        let name = match self.scheduler {
            SchedulerPolicy::Hpds => "resccl",
            SchedulerPolicy::RoundRobin => "resccl-rr",
        };
        Ok(finish(name, spec, buffer_bytes, &alloc, sim))
    }
}

impl Backend for RescclBackend {
    fn name(&self) -> &str {
        match self.scheduler {
            SchedulerPolicy::Hpds => "resccl",
            SchedulerPolicy::RoundRobin => "resccl-rr",
        }
    }

    fn run(
        &self,
        spec: &AlgoSpec,
        topo: &Topology,
        buffer_bytes: u64,
        chunk_bytes: u64,
    ) -> SimResult<RunReport> {
        self.run_inner(spec, topo, buffer_bytes, chunk_bytes, true)
    }

    fn run_unchecked(
        &self,
        spec: &AlgoSpec,
        topo: &Topology,
        buffer_bytes: u64,
        chunk_bytes: u64,
    ) -> SimResult<RunReport> {
        self.run_inner(spec, topo, buffer_bytes, chunk_bytes, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescc_algos::{hm_allgather, hm_allreduce, ring_allgather, taccl_like_allgather};

    const MB: u64 = 1 << 20;

    #[test]
    fn all_backends_run_correct_collectives() {
        let topo = Topology::a100(2, 4);
        let spec = hm_allgather(2, 4);
        for backend in [
            &NcclBackend::default() as &dyn Backend,
            &MscclBackend::default(),
            &RescclBackend::default(),
        ] {
            let rep = backend
                .run(&spec, &topo, 64 * MB, MB)
                .unwrap_or_else(|e| panic!("{} failed: {e}", backend.name()));
            assert_eq!(rep.sim.data_valid, Some(true), "{}", backend.name());
            assert!(rep.algbw_gbps() > 0.0);
        }
    }

    #[test]
    fn resccl_beats_baselines_on_hm_allreduce() {
        // The headline claim (Fig. 6): same algorithm, large buffer —
        // ResCCL's backend delivers strictly more bandwidth than both
        // NCCL-style and MSCCL-style execution.
        let topo = Topology::a100(2, 4);
        let spec = hm_allreduce(2, 4);
        let buffer = 512 * MB;
        let r = RescclBackend::default()
            .run_unchecked(&spec, &topo, buffer, MB)
            .unwrap();
        let m = MscclBackend::default()
            .run_unchecked(&spec, &topo, buffer, MB)
            .unwrap();
        let n = NcclBackend::default()
            .run_unchecked(&spec, &topo, buffer, MB)
            .unwrap();
        assert!(
            r.algbw_gbps() > m.algbw_gbps(),
            "resccl {} <= msccl {}",
            r.algbw_gbps(),
            m.algbw_gbps()
        );
        assert!(
            r.algbw_gbps() > n.algbw_gbps(),
            "resccl {} <= nccl {}",
            r.algbw_gbps(),
            n.algbw_gbps()
        );
    }

    #[test]
    fn resccl_uses_fewer_tbs() {
        let topo = Topology::a100(2, 8);
        let spec = hm_allreduce(2, 8);
        let r = RescclBackend::default()
            .run_unchecked(&spec, &topo, 32 * MB, MB)
            .unwrap();
        let m = MscclBackend::default()
            .run_unchecked(&spec, &topo, 32 * MB, MB)
            .unwrap();
        assert!(
            r.total_tbs * 2 <= m.total_tbs,
            "resccl {} vs msccl {}",
            r.total_tbs,
            m.total_tbs
        );
    }

    #[test]
    fn resccl_has_higher_tb_utilization() {
        let topo = Topology::a100(2, 4);
        let spec = hm_allreduce(2, 4);
        let r = RescclBackend::default()
            .run_unchecked(&spec, &topo, 256 * MB, MB)
            .unwrap();
        let m = MscclBackend::default()
            .run_unchecked(&spec, &topo, 256 * MB, MB)
            .unwrap();
        assert!(
            r.sim.avg_idle_ratio() < m.sim.avg_idle_ratio(),
            "resccl idle {} >= msccl idle {}",
            r.sim.avg_idle_ratio(),
            m.sim.avg_idle_ratio()
        );
    }

    #[test]
    fn hpds_not_worse_than_round_robin() {
        let topo = Topology::a100(2, 4);
        let spec = taccl_like_allgather(2, 4);
        let h = RescclBackend::default()
            .run_unchecked(&spec, &topo, 256 * MB, MB)
            .unwrap();
        let rr = RescclBackend::round_robin()
            .run_unchecked(&spec, &topo, 256 * MB, MB)
            .unwrap();
        assert!(h.sim.completion_ns <= rr.sim.completion_ns * 1.001);
    }

    #[test]
    fn fusion_trades_tbs_for_bounded_slack() {
        // Chain-merged fused kernels halve the TB budget of ring transits.
        // Fused forwards issue asynchronously (they never gate their TB's
        // issue groups), so the recv→send pair pipelines across
        // micro-batches like its unfused counterpart; the residual slack
        // from sharing one TB must stay within 20% of the plain run.
        let topo = Topology::a100(2, 8);
        let spec = rescc_algos::nccl_rings_allgather(2, 8, 4);
        let plain = RescclBackend::default()
            .run_unchecked(&spec, &topo, 256 * MB, MB)
            .unwrap();
        let fused = RescclBackend::with_fusion()
            .run_unchecked(&spec, &topo, 256 * MB, MB)
            .unwrap();
        assert!(
            fused.total_tbs < plain.total_tbs,
            "fusion must reduce TBs: {} !< {}",
            fused.total_tbs,
            plain.total_tbs
        );
        assert!(
            fused.sim.completion_ns <= plain.sim.completion_ns * 1.2,
            "fused {} more than 20% beyond plain {}",
            fused.sim.completion_ns,
            plain.sim.completion_ns
        );
    }

    #[test]
    fn fusion_preserves_correctness() {
        let topo = Topology::a100(2, 4);
        let spec = hm_allreduce(2, 4);
        let rep = RescclBackend::with_fusion()
            .run(&spec, &topo, 32 * MB, MB)
            .unwrap();
        assert_eq!(rep.sim.data_valid, Some(true));
    }

    #[test]
    fn by_step_schedule_covers_dag() {
        let topo = Topology::a100(1, 8);
        let dag = DepDag::build(&ring_allgather(8), &topo).unwrap();
        let s = by_step_schedule(&dag);
        assert_eq!(s.n_tasks(), dag.len());
        dag.validate_order(&s.linear_order()).unwrap();
    }
}
