//! A NCCL-style convenience API: create a [`Communicator`] for a cluster
//! once, then issue collectives by operator and size — algorithm selection,
//! compilation and plan caching happen inside, the way a downstream user
//! would actually consume the library.
//!
//! Algorithm selection policy (mirroring how vendor libraries pick):
//!
//! * single node → hierarchical mesh (full-mesh phases use every pair
//!   channel; latency-optimal recursive variants for power-of-two small
//!   buffers),
//! * multi-node → the HM family of Appendix A (hierarchical:
//!   intra-mesh + inter-ring) — the paper's expert choice for Clos
//!   clusters.

use crate::{RecoveryAction, RecoveryEvent, RecoveryStats, RunReport, DEFAULT_CHUNK_BYTES};
use rescc_algos::{
    hm_allgather, hm_allreduce, hm_reduce_scatter, recursive_halving_doubling_allreduce,
};
use rescc_core::{plan_fingerprint, CacheStats, CompiledPlan, Compiler, PlanCache, ResidualPlan};
use rescc_ir::MicroBatchPlan;
use rescc_lang::{AlgoSpec, OpType};
use rescc_obs::ObsStats;
use rescc_sim::{FaultFrontier, FaultTimeline, SimConfig, SimError, SimResult};
use rescc_topology::{ResourceId, Topology, TopologyHealth};
use std::collections::HashMap;
use std::sync::Arc;

/// Watchdog/retry knobs for collectives on a faulty fabric.
///
/// Transient failures (a flapping link, an expired deadline) are retried up
/// to [`max_retries`](Self::max_retries) times; each failed attempt burns
/// its failure time plus an exponentially growing backoff of *sim* time, and
/// the fault timeline is replayed shifted by the total elapsed time — a
/// flap that already passed stays passed. Permanent failures mask the dead
/// resource in a [`TopologyHealth`] overlay and recompile against the
/// degraded topology, at most [`max_recompiles`](Self::max_recompiles)
/// times per call.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPolicy {
    /// Per-attempt sim-time deadline (ns); `None` disables the watchdog.
    pub deadline_ns: Option<f64>,
    /// Transient-fault retries before giving up.
    pub max_retries: u32,
    /// Degraded-topology recompiles before giving up.
    pub max_recompiles: u32,
    /// First retry waits this long (sim ns) before relaunching.
    pub backoff_base_ns: f64,
    /// Backoff multiplier per further retry.
    pub backoff_factor: f64,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        Self {
            deadline_ns: None,
            max_retries: 8,
            max_recompiles: 4,
            backoff_base_ns: 200_000.0,
            backoff_factor: 2.0,
        }
    }
}

impl FaultPolicy {
    /// The backoff before retry number `retry` (1-based).
    fn backoff_ns(&self, retry: u32) -> f64 {
        self.backoff_base_ns * self.backoff_factor.powi(retry.saturating_sub(1) as i32)
    }
}

/// A handle for issuing collectives on a fixed cluster.
///
/// Dispatch goes through a [`PlanCache`]: the first call of each distinct
/// (operator, algorithm, micro-batch shape) configuration compiles, every
/// repeat is a fingerprint lookup — none of the compile phases run again
/// (observable via [`rescc_core::phase_counters`]). Each [`RunReport`]
/// carries the cache counters at the time of the call.
///
/// The cache is held through an `Arc`: by default each communicator owns a
/// private one (today's behavior), and
/// [`with_shared_cache`](Self::with_shared_cache) opts a group of
/// communicators — across threads — into one shared plan service, so a
/// plan compiled by any tenant serves all of them.
pub struct Communicator {
    topo: Topology,
    compiler: Compiler,
    cache: Arc<PlanCache>,
    chunk_bytes: u64,
    /// Cached specs per (op, small) bucket — algorithm construction is
    /// cheap but deterministic reuse keeps behaviour predictable.
    specs: HashMap<(OpType, bool), AlgoSpec>,
    /// Fault schedule injected into every collective issued through this
    /// communicator (sim-time timestamps relative to each call's start).
    faults: FaultTimeline,
    /// Watchdog/retry configuration.
    policy: FaultPolicy,
    /// Resources masked dead by permanent-fault recovery; sticky across
    /// calls, the way a real communicator remembers a dead link.
    health: TopologyHealth,
    /// Validate collective data in the simulator (off by default, matching
    /// the dispatch path's large-sweep configuration).
    validate: bool,
    /// Collect cross-layer observability: compile-phase and watchdog
    /// spans on [`RunReport::obs`], bubble attribution on the sim report.
    observe: bool,
}

impl Communicator {
    /// Create a communicator over `topo` with the default ResCCL backend.
    pub fn new(topo: Topology) -> Self {
        Self {
            topo,
            compiler: Compiler::new(),
            cache: Arc::new(PlanCache::new()),
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            specs: HashMap::new(),
            faults: FaultTimeline::new(),
            policy: FaultPolicy::default(),
            health: TopologyHealth::healthy(),
            validate: false,
            observe: false,
        }
    }

    /// Override the transfer chunk size (default 1 MB).
    pub fn with_chunk_bytes(mut self, chunk_bytes: u64) -> Self {
        assert!(chunk_bytes > 0);
        self.chunk_bytes = chunk_bytes;
        self
    }

    /// Inject a fault schedule into every collective issued through this
    /// communicator. Timestamps are sim time relative to each call's start.
    pub fn with_faults(mut self, faults: FaultTimeline) -> Self {
        self.faults = faults;
        self
    }

    /// Replace the fault schedule in place — the chaos harness re-arms the
    /// same communicator between collectives, and healing reacts to it: a
    /// masked resource whose *current* schedule no longer declares it
    /// permanently dead is un-masked at the next collective boundary.
    pub fn set_faults(&mut self, faults: FaultTimeline) {
        self.faults = faults;
    }

    /// Override the watchdog/retry policy.
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enable machine-checked data validation on every collective.
    pub fn with_validation(mut self) -> Self {
        self.validate = true;
        self
    }

    /// Collect cross-layer observability on every collective: compiler
    /// phase spans, cache hit/miss events and watchdog recovery spans
    /// ride on [`RunReport::obs`]; the simulator runs with a transfer
    /// trace and bubble attribution
    /// ([`SimReport::obs`](rescc_sim::SimReport)). Off by default — the
    /// wall-clock compile spans make observed reports nondeterministic,
    /// so replay-comparison consumers must not enable this.
    pub fn with_observability(mut self) -> Self {
        self.observe = true;
        self
    }

    /// The current health mask (resources masked by permanent-fault
    /// recovery so far).
    pub fn health(&self) -> &TopologyHealth {
        &self.health
    }

    /// Fan compilation out over `threads` worker threads (the compiled
    /// plans are bit-identical to serial compilation for any value).
    pub fn with_compile_threads(mut self, threads: usize) -> Self {
        self.compiler = self.compiler.with_threads(threads);
        self
    }

    /// The topology this communicator serves.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Share a plan cache with other communicators (multi-tenant
    /// dispatch). All tenants must agree on compiler configuration for
    /// sharing to pay off — the fingerprint covers compiler options, so a
    /// mismatched tenant simply misses into its own entries. Concurrent
    /// tenants are safe: warm dispatches take only a shared per-shard
    /// lock, and cold dispatches of the same fingerprint are coalesced
    /// into one compile.
    pub fn with_shared_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The plan cache this communicator dispatches through — clone the
    /// `Arc` to share it with another tenant.
    pub fn cache_handle(&self) -> Arc<PlanCache> {
        Arc::clone(&self.cache)
    }

    /// Plan-cache counters (hits, misses, resident entries). Under a
    /// shared cache these are service-wide, not per-tenant.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Pick the algorithm for an operator and buffer size.
    fn select(&mut self, op: OpType, buffer_bytes: u64) -> AlgoSpec {
        let nodes = self.topo.n_nodes();
        let g = self.topo.gpus_per_node();
        let n = self.topo.n_ranks();
        // "Small" = latency-dominated: few micro-batches to pipeline.
        let small = buffer_bytes <= (n as u64) * self.chunk_bytes * 2;
        if let Some(spec) = self.specs.get(&(op, small)) {
            return spec.clone();
        }
        let spec = match op {
            OpType::AllGather => hm_allgather(nodes, g),
            OpType::ReduceScatter => hm_reduce_scatter(nodes, g),
            OpType::AllReduce => {
                if small && n.is_power_of_two() && nodes == 1 {
                    // Log-depth butterfly wins when α dominates.
                    recursive_halving_doubling_allreduce(n)
                } else {
                    hm_allreduce(nodes, g)
                }
            }
        };
        self.specs.insert((op, small), spec.clone());
        spec
    }

    /// AllReduce `buffer_bytes` per rank.
    pub fn all_reduce(&mut self, buffer_bytes: u64) -> SimResult<RunReport> {
        self.run(OpType::AllReduce, buffer_bytes)
    }

    /// AllGather `buffer_bytes` per rank (the gathered size).
    pub fn all_gather(&mut self, buffer_bytes: u64) -> SimResult<RunReport> {
        self.run(OpType::AllGather, buffer_bytes)
    }

    /// ReduceScatter `buffer_bytes` per rank.
    pub fn reduce_scatter(&mut self, buffer_bytes: u64) -> SimResult<RunReport> {
        self.run(OpType::ReduceScatter, buffer_bytes)
    }

    fn run(&mut self, op: OpType, buffer_bytes: u64) -> SimResult<RunReport> {
        let spec = self.select(op, buffer_bytes);
        let chunk = self.chunk_bytes;
        let mb = MicroBatchPlan::plan(buffer_bytes, spec.n_chunks(), chunk);
        // The watchdog only reports recovery accounting when it could have
        // done something — otherwise the report stays byte-compatible with
        // a plain healthy dispatch.
        let engaged =
            !self.faults.is_empty() || self.policy.deadline_ns.is_some() || !self.health.is_empty();
        let mut stats = RecoveryStats::default();
        let mut obs = self.observe.then(ObsStats::default);
        // Healing: a masked resource whose current fault schedule no
        // longer declares it permanently dead has been restored — un-mask
        // it and fail back to the healthier plan at this collective
        // boundary (the dispatch below picks it up via the fingerprint).
        let restored: Vec<ResourceId> = self
            .health
            .dead()
            .iter()
            .copied()
            .filter(|r| !self.faults.is_permanent_down(*r))
            .collect();
        for r in restored {
            self.health.unmask(r);
            stats.heals += 1;
            stats.journal.push(RecoveryEvent {
                attempt: 0,
                cause: format!("{r} restored"),
                at_ns: 0.0,
                action: RecoveryAction::Heal,
            });
            if let Some(o) = obs.as_mut() {
                o.add_heal(0.0, 0.0);
            }
        }
        // Wall-clock offset on the compiler track where the next
        // compile's phase spans start (successive recompiles stack).
        let mut compile_at = 0.0f64;
        // Sim time burned by failed attempts + backoff so far. Each retry
        // replays the fault timeline shifted into the past by this much,
        // so a flap that already passed stays passed.
        let mut elapsed = 0.0f64;
        // Completed invocations accumulated across aborted attempts, in
        // the id space of the full (non-residual) plan — stable across
        // delta recompiles (reroutes preserve task ids) and across full
        // recompiles (the DAG is rebuilt deterministically from the same
        // spec). While non-empty, each attempt resumes from it.
        let mut acc: Option<FaultFrontier> = None;
        loop {
            let topo = self.topo.clone().with_health(self.health.clone());
            // The traced dispatch hands back the CacheEvent for *this*
            // call, so attribution is exact even when the cache is shared
            // across threads (reading `journal().last()` here used to
            // attribute whichever tenant dispatched most recently — and
            // panicked outright with a zero-capacity journal).
            let (plan, ev) = self
                .cache
                .get_or_compile_traced(&self.compiler, &spec, &topo, &mb)?;
            let fingerprint = ev.fingerprint;
            if let Some(o) = obs.as_mut() {
                o.add_cache_event(&ev, compile_at);
                if !ev.is_hit() {
                    compile_at = o.add_compile(&plan.timings, "compiler", compile_at);
                }
            }
            // Every post-fault recompile is analyzed before the collective
            // resumes: the compiler's sanitize phase already ran (the
            // communicator's gate is deny), and RA005 specifically proves
            // no task routes over a masked resource. Refuse to resume on a
            // plan that somehow still carries errors (e.g. a caller-tuned
            // warn gate) rather than fail mid-collective.
            if stats.recompiles > 0 && plan.diagnostics.has_errors() {
                return Err(SimError::new(format!(
                    "recovery: degraded plan rejected by static analysis\n{}",
                    plan.diagnostics.render_human()
                )));
            }
            let mut cfg = if self.validate {
                SimConfig::default()
            } else {
                SimConfig::default().without_validation()
            };
            if !self.faults.is_empty() {
                cfg = cfg.with_faults(self.faults.advanced(elapsed));
            }
            if let Some(d) = self.policy.deadline_ns {
                cfg = cfg.with_deadline_ns(d);
            }
            if self.observe {
                cfg = cfg.with_trace().with_observability();
            }
            // Partial-progress resume: while the accumulated frontier is
            // non-empty, compile the residual plan (pruned + re-rooted,
            // sanitize re-run, provenance verified) and run only the
            // remainder. A frontier the residual compiler refuses falls
            // back to a plain restart — correctness never depends on the
            // resume succeeding.
            let residual: Option<ResidualPlan> = match &acc {
                Some(f) if !f.is_empty() => self.compiler.residual_plan(&plan, f).ok(),
                _ => None,
            };
            let attempt = match &residual {
                Some(r) => {
                    stats.resumes += 1;
                    if let Some(o) = obs.as_mut() {
                        o.add_resume(stats.resumes as u64, elapsed, 0.0);
                    }
                    let cfg = cfg.clone().with_resume(r.resume.clone());
                    r.plan.run_with(buffer_bytes, chunk, &cfg)
                }
                None => plan.run_with(buffer_bytes, chunk, &cfg),
            };
            let exec_plan: &CompiledPlan = residual.as_ref().map_or(&plan, |r| &r.plan);
            match attempt {
                Ok(sim) => {
                    stats.recovery_ns = elapsed;
                    stats.dead_resources = self.health.dead().iter().map(|r| r.0).collect();
                    stats.plan_fingerprint = fingerprint;
                    stats.lint_diagnostics = plan.diagnostics.diagnostics().len() as u32;
                    // Certificate cross-check, fresh fault-free runs only:
                    // a resumed attempt skips completed work and a
                    // degraded/faulted one runs against parameters the
                    // certificate was not computed for, so neither bounds
                    // from below.
                    let certificate_undercut = (residual.is_none()
                        && self.faults.is_empty()
                        && self.health.is_empty()
                        && elapsed == 0.0)
                        .then(|| {
                            plan.makespan_floor_ns(buffer_bytes, chunk)
                                .is_some_and(|floor| sim.undercuts_floor(floor))
                        });
                    return Ok(RunReport {
                        backend: "resccl".to_string(),
                        algo: spec.name().to_string(),
                        buffer_bytes,
                        total_tbs: exec_plan.alloc.total_tbs(),
                        max_rank_tbs: exec_plan.alloc.max_rank_tbs(),
                        sim,
                        cache: Some(self.cache.stats()),
                        recovery: engaged.then_some(stats),
                        certificate_undercut,
                        obs,
                    });
                }
                Err(err) if err.is_transient() => {
                    stats.retries += 1;
                    if stats.retries > self.policy.max_retries {
                        return Err(err);
                    }
                    let failed_at = err.at_ns().unwrap_or(0) as f64;
                    let resumable =
                        absorb_frontier(err.frontier(), &residual, plan.dag.len() as u32, &mut acc);
                    let backoff = self.policy.backoff_ns(stats.retries);
                    if let Some(o) = obs.as_mut() {
                        o.add_retry(stats.retries as u64, elapsed, failed_at);
                        o.add_backoff(elapsed + failed_at, backoff);
                    }
                    stats.journal.push(RecoveryEvent {
                        attempt: stats.retries + stats.recompiles,
                        cause: match &err {
                            SimError::ResourceDown { resource, .. } => {
                                format!("transient r{resource} down")
                            }
                            SimError::DeadlineExceeded { .. } => "deadline".to_string(),
                            _ => "transient".to_string(),
                        },
                        at_ns: elapsed + failed_at,
                        action: if resumable {
                            RecoveryAction::Resume
                        } else {
                            RecoveryAction::Retry
                        },
                    });
                    elapsed += failed_at + backoff;
                }
                Err(SimError::ResourceDown {
                    resource,
                    task,
                    at_ns,
                    permanent: true,
                    frontier,
                }) => {
                    stats.recompiles += 1;
                    if stats.recompiles > self.policy.max_recompiles
                        || !self.health.mask(ResourceId::new(resource))
                    {
                        // Budget exhausted, or the resource was already
                        // masked (routing could not avoid it): no progress
                        // is possible.
                        return Err(SimError::ResourceDown {
                            resource,
                            task,
                            at_ns,
                            permanent: true,
                            frontier,
                        });
                    }
                    // Fold the aborted attempt's completed work in before
                    // the plan changes under us — the post-recompile
                    // dispatch resumes from it instead of restarting.
                    absorb_frontier(
                        frontier.as_deref(),
                        &residual,
                        plan.dag.len() as u32,
                        &mut acc,
                    );
                    // Incremental recompile: reroute the just-failed plan
                    // around the freshly-masked resource and splice
                    // (`Compiler::recompile_delta`), caching the result
                    // under the degraded fingerprint so the dispatch at the
                    // top of the loop hits instead of compiling the whole
                    // pipeline again. Residual plans never go through the
                    // delta path — the recompile always starts from the
                    // full cached plan, and the next dispatch re-prunes.
                    // If the splice is denied (no healthy route — the deny
                    // gate fires), fall through: the full compile at the
                    // top of the loop reports the identical lint error.
                    let mut action = RecoveryAction::FullRecompile;
                    if let Ok(delta) = self.compiler.recompile_delta(&plan, &self.health) {
                        let degraded = self.topo.clone().with_health(self.health.clone());
                        let fp = plan_fingerprint(&self.compiler, &spec, &degraded, &mb);
                        stats.delta_recompiles += 1;
                        action = RecoveryAction::DeltaRecompile;
                        if let Some(o) = obs.as_mut() {
                            compile_at =
                                o.add_compile(&delta.timings, "compiler-delta", compile_at);
                            o.add_delta_recompile(elapsed + at_ns as f64, 0.0);
                        }
                        self.cache.insert(fp, std::sync::Arc::new(delta));
                    }
                    if let Some(o) = obs.as_mut() {
                        o.add_recompile(elapsed + at_ns as f64, self.policy.backoff_base_ns);
                    }
                    stats.journal.push(RecoveryEvent {
                        attempt: stats.retries + stats.recompiles,
                        cause: format!("r{resource} dead"),
                        at_ns: elapsed + at_ns as f64,
                        action,
                    });
                    elapsed += at_ns as f64 + self.policy.backoff_base_ns;
                }
                // Invalid program/config, wrong data, deadlock, …: not
                // recoverable by retrying or rerouting.
                Err(err) => return Err(err),
            }
        }
    }
}

/// Fold a just-aborted attempt's frontier into the accumulated one, mapping
/// residual-space task ids back to the full plan's id space when the
/// attempt ran a residual plan. Returns whether the accumulated frontier is
/// now non-empty (i.e. the next attempt can resume).
fn absorb_frontier(
    frontier: Option<&FaultFrontier>,
    residual: &Option<ResidualPlan>,
    full_n_tasks: u32,
    acc: &mut Option<FaultFrontier>,
) -> bool {
    if let Some(f) = frontier {
        let mapped = match residual {
            Some(r) => r.frontier_to_original(f, full_n_tasks),
            None => f.clone(),
        };
        match acc {
            Some(a) => {
                a.union(&mapped);
            }
            None => *acc = Some(mapped),
        }
    }
    acc.as_ref().is_some_and(|a| !a.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn issues_all_three_collectives() {
        let mut comm = Communicator::new(Topology::a100(2, 4));
        for rep in [
            comm.all_reduce(64 * MB).unwrap(),
            comm.all_gather(64 * MB).unwrap(),
            comm.reduce_scatter(64 * MB).unwrap(),
        ] {
            assert!(rep.algbw_gbps() > 0.0);
            assert_eq!(rep.backend, "resccl");
        }
    }

    #[test]
    fn small_single_node_allreduce_uses_butterfly() {
        let mut comm = Communicator::new(Topology::a100(1, 8));
        let small = comm.all_reduce(4 * MB).unwrap();
        assert!(small.algo.starts_with("rechd-ar"));
        let large = comm.all_reduce(1024 * MB).unwrap();
        assert!(large.algo.starts_with("hm-ar"));
    }

    #[test]
    fn multi_node_uses_hierarchical_mesh() {
        let mut comm = Communicator::new(Topology::a100(4, 8));
        let rep = comm.all_reduce(256 * MB).unwrap();
        assert!(rep.algo.starts_with("hm-ar"));
    }

    #[test]
    fn spec_cache_is_stable() {
        let mut comm = Communicator::new(Topology::a100(2, 4));
        let a = comm.all_gather(128 * MB).unwrap();
        let b = comm.all_gather(128 * MB).unwrap();
        assert_eq!(a.sim, b.sim);
    }

    #[test]
    fn custom_chunk_size() {
        let mut comm = Communicator::new(Topology::a100(1, 4)).with_chunk_bytes(4 * MB);
        let rep = comm.all_gather(64 * MB).unwrap();
        assert!(rep.sim.n_micro_batches <= 4);
    }

    #[test]
    fn healthy_run_reports_no_recovery() {
        let mut comm = Communicator::new(Topology::a100(2, 4));
        let rep = comm.all_reduce(64 * MB).unwrap();
        assert_eq!(rep.recovery, None);
        assert_eq!(rep.total_completion_ns(), rep.sim.completion_ns);
    }

    #[test]
    fn transient_flap_is_retried_to_success() {
        let topo = Topology::a100(2, 4);
        let chan = topo.pair_chan(rescc_topology::Rank::new(0), rescc_topology::Rank::new(1));
        let mut comm = Communicator::new(topo)
            .with_validation()
            .with_faults(FaultTimeline::new().flap(chan, 50_000.0, 80_000.0, 80_000.0, 1));
        let rep = comm.all_reduce(64 * MB).unwrap();
        assert_eq!(rep.sim.data_valid, Some(true));
        let rec = rep.recovery.clone().expect("watchdog engaged");
        assert!(rec.retries >= 1, "flap must force at least one retry");
        assert_eq!(rec.recompiles, 0, "transient faults never recompile");
        assert!(rec.dead_resources.is_empty());
        assert!(rec.recovery_ns > 0.0);
        assert!(rep.total_completion_ns() > rep.sim.completion_ns);
        assert!(comm.health().is_empty(), "no permanent masking");
    }

    #[test]
    fn permanent_link_death_masks_and_recompiles() {
        let topo = Topology::a100(2, 4);
        let chan = topo.pair_chan(rescc_topology::Rank::new(0), rescc_topology::Rank::new(1));
        let mut comm = Communicator::new(topo)
            .with_validation()
            .with_faults(FaultTimeline::new().kill(chan, 100_000.0));
        let healthy_fp = {
            let mut h = Communicator::new(Topology::a100(2, 4)).with_validation();
            h.all_reduce(64 * MB)
                .unwrap()
                .recovery
                .map(|r| r.plan_fingerprint)
        };
        let rep = comm.all_reduce(64 * MB).unwrap();
        assert_eq!(rep.sim.data_valid, Some(true));
        let rec = rep.recovery.expect("watchdog engaged");
        assert!(rec.recompiles >= 1, "link death must recompile");
        assert_eq!(
            rec.delta_recompiles, rec.recompiles,
            "a surviving intra-node reroute must be served incrementally"
        );
        assert_eq!(rec.dead_resources, vec![chan.0]);
        // The degraded plan was re-analyzed (deny gate) and came out clean.
        assert_eq!(rec.lint_diagnostics, 0);
        assert!(comm.health().is_dead(chan));
        // The degraded plan's fingerprint differs from any healthy plan's.
        assert_ne!(Some(rec.plan_fingerprint), healthy_fp);
        assert_ne!(rec.plan_fingerprint, 0);
        // The mask is sticky: a second call reuses the degraded plan
        // without failing again (the kill at 100µs re-fires, but the dead
        // channel is no longer on any path).
        let again = comm.all_reduce(64 * MB).unwrap();
        assert_eq!(again.sim.data_valid, Some(true));
        assert_eq!(again.recovery.expect("engaged").recompiles, 0);
    }

    #[test]
    fn deadline_bounds_each_attempt() {
        let mut healthy = Communicator::new(Topology::a100(2, 4));
        let base = healthy.all_reduce(64 * MB).unwrap().sim.completion_ns;
        // A deadline below the healthy completion can never be met; the
        // watchdog retries it max_retries times, then gives up.
        let mut comm = Communicator::new(Topology::a100(2, 4)).with_fault_policy(FaultPolicy {
            deadline_ns: Some(base * 0.5),
            max_retries: 2,
            ..FaultPolicy::default()
        });
        let err = comm.all_reduce(64 * MB).unwrap_err();
        assert!(matches!(err, SimError::DeadlineExceeded { .. }), "{err}");
        // A generous deadline passes and reports zero retries.
        let mut comm = Communicator::new(Topology::a100(2, 4)).with_fault_policy(FaultPolicy {
            deadline_ns: Some(base * 2.0),
            ..FaultPolicy::default()
        });
        let rep = comm.all_reduce(64 * MB).unwrap();
        let rec = rep.recovery.expect("deadline engages the watchdog");
        assert_eq!(rec.retries, 0);
    }

    #[test]
    fn observability_is_off_by_default() {
        let mut comm = Communicator::new(Topology::a100(2, 4));
        let rep = comm.all_reduce(64 * MB).unwrap();
        assert_eq!(rep.obs, None);
        assert_eq!(rep.sim.obs, None);
        assert!(rep.sim.trace.is_empty());
    }

    #[test]
    fn observability_collects_compile_cache_and_watchdog_spans() {
        use rescc_obs::SpanCategory;
        let topo = Topology::a100(2, 4);
        let chan = topo.pair_chan(rescc_topology::Rank::new(0), rescc_topology::Rank::new(1));
        let mut comm = Communicator::new(topo)
            .with_observability()
            .with_faults(FaultTimeline::new().flap(chan, 50_000.0, 80_000.0, 80_000.0, 1));
        let rep = comm.all_reduce(64 * MB).unwrap();
        let obs = rep.obs.as_ref().expect("observability enabled");
        // First dispatch compiles; phase spans rode along.
        assert_eq!(obs.cache_misses, 1);
        assert!(obs.compile_total_ns() > 0.0);
        assert!(obs
            .spans
            .iter()
            .any(|s| s.category == SpanCategory::Compile));
        assert!(obs.spans.iter().any(|s| s.category == SpanCategory::Cache));
        // The flap forced at least one retry; watchdog spans and counters
        // agree with the recovery accounting.
        let rec = rep.recovery.as_ref().expect("watchdog engaged");
        assert_eq!(obs.retries, rec.retries as u64);
        assert!(obs.retries >= 1);
        assert!(obs.backoff_ns > 0.0);
        assert!(obs
            .spans
            .iter()
            .any(|s| s.category == SpanCategory::Recovery && s.name == "backoff"));
        // The simulator ran with trace + bubble attribution.
        assert!(rep.sim.obs.is_some());
        assert!(!rep.sim.trace.is_empty());
        // A second identical call hits the cache (once per attempt — the
        // flap timeline re-fires, so the retry dispatches again): no new
        // compile time.
        let rep2 = comm.all_reduce(64 * MB).unwrap();
        let obs2 = rep2.obs.as_ref().unwrap();
        assert!(obs2.cache_hits >= 1);
        assert_eq!(obs2.cache_misses, 0);
        assert_eq!(obs2.compile_total_ns(), 0.0);
    }

    #[test]
    fn observability_stacks_recompile_spans() {
        use rescc_obs::SpanCategory;
        let topo = Topology::a100(2, 4);
        let chan = topo.pair_chan(rescc_topology::Rank::new(0), rescc_topology::Rank::new(1));
        let mut comm = Communicator::new(topo)
            .with_observability()
            .with_faults(FaultTimeline::new().kill(chan, 100_000.0));
        let rep = comm.all_reduce(64 * MB).unwrap();
        let obs = rep.obs.as_ref().unwrap();
        let rec = rep.recovery.as_ref().unwrap();
        assert!(rec.recompiles >= 1);
        assert_eq!(obs.recompiles, rec.recompiles as u64);
        assert_eq!(obs.delta_recompiles, rec.delta_recompiles as u64);
        // The degraded plan was spliced incrementally and inserted into the
        // cache, so only the healthy plan ever missed; the post-fault
        // dispatch hits.
        assert_eq!(obs.cache_misses, 1);
        assert!(obs.cache_hits >= 1);
        assert!(obs
            .spans
            .iter()
            .any(|s| s.category == SpanCategory::Recovery && s.name == "mask+recompile"));
        assert!(obs
            .spans
            .iter()
            .any(|s| s.category == SpanCategory::Recovery && s.name == "splice-delta"));
        // Compile spans from the two compiles stack without overlap.
        let mut compile_spans: Vec<_> = obs
            .spans
            .iter()
            .filter(|s| s.category == SpanCategory::Compile)
            .collect();
        compile_spans.sort_by(|a, b| a.start_ns.total_cmp(&b.start_ns));
        for w in compile_spans.windows(2) {
            assert!(w[0].end_ns() <= w[1].start_ns + 1e-6);
        }
    }

    #[test]
    fn permanent_fault_resumes_from_frontier() {
        let topo = Topology::a100(2, 4);
        let chan = topo.pair_chan(rescc_topology::Rank::new(0), rescc_topology::Rank::new(1));
        let healthy_ns = {
            let mut h = Communicator::new(Topology::a100(2, 4)).with_validation();
            h.all_reduce(64 * MB).unwrap().sim.completion_ns
        };
        // Kill well past the halfway point: most invocations completed,
        // so the post-recompile attempt must resume, not restart.
        let mut comm = Communicator::new(topo)
            .with_validation()
            .with_faults(FaultTimeline::new().kill(chan, healthy_ns * 0.6));
        let rep = comm.all_reduce(64 * MB).unwrap();
        assert_eq!(rep.sim.data_valid, Some(true));
        let rec = rep.recovery.expect("watchdog engaged");
        assert!(rec.recompiles >= 1);
        assert!(
            rec.resumes >= 1,
            "late fault must resume from the frontier: {rec:?}"
        );
        assert!(
            rep.sim.completion_ns < healthy_ns,
            "residual attempt {} must be shorter than a full run {healthy_ns}",
            rep.sim.completion_ns
        );
        assert!(!rec.journal.is_empty());
        assert_eq!(rec.journal[0].action, crate::RecoveryAction::DeltaRecompile);
        assert!(rec.journal[0].cause.contains("dead"), "{rec:?}");
        assert!(rec.journal[0].at_ns > 0.0);
    }

    #[test]
    fn transient_kill_with_restore_resumes_without_masking() {
        let topo = Topology::a100(2, 4);
        let chan = topo.pair_chan(rescc_topology::Rank::new(0), rescc_topology::Rank::new(1));
        // Down at 300µs, restored 200µs later: the timeline declares the
        // outage non-permanent, so the abort is transient and recovery
        // resumes on the *same* (unmasked) plan.
        let mut comm = Communicator::new(topo).with_validation().with_faults(
            FaultTimeline::new()
                .kill(chan, 300_000.0)
                .restore(chan, 500_000.0),
        );
        let rep = comm.all_reduce(64 * MB).unwrap();
        assert_eq!(rep.sim.data_valid, Some(true));
        let rec = rep.recovery.expect("watchdog engaged");
        assert!(rec.retries >= 1);
        assert_eq!(rec.recompiles, 0, "restored outage must not recompile");
        assert!(
            rec.resumes >= 1,
            "mid-run outage must resume from the frontier: {rec:?}"
        );
        assert!(comm.health().is_empty(), "no masking for restored faults");
        assert!(rec
            .journal
            .iter()
            .any(|e| e.action == crate::RecoveryAction::Resume));
    }

    #[test]
    fn restored_resource_heals_back_to_healthy_plan() {
        let topo = Topology::a100(2, 4);
        let chan = topo.pair_chan(rescc_topology::Rank::new(0), rescc_topology::Rank::new(1));
        let healthy_fp = {
            // A generous deadline engages the watchdog on a healthy twin,
            // exposing the healthy plan's fingerprint.
            let mut h = Communicator::new(Topology::a100(2, 4)).with_fault_policy(FaultPolicy {
                deadline_ns: Some(1e12),
                ..FaultPolicy::default()
            });
            h.all_reduce(64 * MB)
                .unwrap()
                .recovery
                .unwrap()
                .plan_fingerprint
        };
        let mut comm = Communicator::new(topo)
            .with_validation()
            .with_faults(FaultTimeline::new().kill(chan, 100_000.0));
        let first = comm.all_reduce(64 * MB).unwrap();
        assert!(comm.health().is_dead(chan), "kill masks the channel");
        let degraded_fp = first.recovery.unwrap().plan_fingerprint;
        assert_ne!(degraded_fp, healthy_fp);
        // The link comes back: the schedule no longer declares it dead.
        comm.set_faults(FaultTimeline::new());
        let healed = comm.all_reduce(64 * MB).unwrap();
        assert!(comm.health().is_empty(), "heal must clear the mask");
        let rec = healed.recovery.expect("heal engages the watchdog");
        assert_eq!(rec.heals, 1);
        assert_eq!(rec.recompiles, 0);
        assert_eq!(rec.retries, 0);
        assert_eq!(
            rec.plan_fingerprint, healthy_fp,
            "heal must fail back to the cached healthy plan"
        );
        assert_eq!(rec.journal.len(), 1);
        assert_eq!(rec.journal[0].action, crate::RecoveryAction::Heal);
        assert!(rec.journal[0].cause.contains("restored"));
        // Fully healthy again: the next call reports no recovery at all.
        let clean = comm.all_reduce(64 * MB).unwrap();
        assert_eq!(clean.recovery, None);
    }

    #[test]
    fn journal_orders_attempts_and_observability_counts_resumes() {
        let topo = Topology::a100(2, 4);
        let chan = topo.pair_chan(rescc_topology::Rank::new(0), rescc_topology::Rank::new(1));
        let mut comm = Communicator::new(topo)
            .with_observability()
            .with_validation()
            .with_faults(
                FaultTimeline::new()
                    .kill(chan, 300_000.0)
                    .restore(chan, 500_000.0),
            );
        let rep = comm.all_reduce(64 * MB).unwrap();
        let rec = rep.recovery.expect("watchdog engaged");
        assert!(!rec.journal.is_empty());
        for (i, ev) in rec.journal.iter().enumerate() {
            assert_eq!(ev.attempt, i as u32 + 1, "attempts must be ordered");
            assert!(ev.at_ns >= 0.0);
        }
        let obs = rep.obs.expect("observability enabled");
        assert_eq!(obs.resumes, rec.resumes as u64);
        assert!(obs
            .spans
            .iter()
            .any(|s| s.name.starts_with("resume#")
                && s.category == rescc_obs::SpanCategory::Recovery));
    }

    #[test]
    fn recovery_replays_byte_identically() {
        let run = || {
            let topo = Topology::a100(2, 4);
            let chan = topo.pair_chan(rescc_topology::Rank::new(1), rescc_topology::Rank::new(2));
            let mut comm = Communicator::new(topo).with_validation().with_faults(
                FaultTimeline::new()
                    .kill(chan, 150_000.0)
                    .straggler(0, 0.0, 2.0, 400_000.0),
            );
            comm.all_reduce(64 * MB).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed/timeline must replay byte-identically");
        assert!(a.recovery.is_some());
    }
}
