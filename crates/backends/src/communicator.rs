//! A NCCL-style convenience API: create a [`Communicator`] for a cluster
//! once, then issue collectives by operator and size — algorithm selection,
//! compilation and plan caching happen inside, the way a downstream user
//! would actually consume the library.
//!
//! Algorithm selection policy (mirroring how vendor libraries pick):
//!
//! * single node → hierarchical mesh (full-mesh phases use every pair
//!   channel; latency-optimal recursive variants for power-of-two small
//!   buffers),
//! * multi-node → the HM family of Appendix A (hierarchical:
//!   intra-mesh + inter-ring) — the paper's expert choice for Clos
//!   clusters.

use crate::{RunReport, DEFAULT_CHUNK_BYTES};
use rescc_algos::{
    hm_allgather, hm_allreduce, hm_reduce_scatter, recursive_halving_doubling_allreduce,
};
use rescc_core::{CacheStats, Compiler, PlanCache};
use rescc_ir::MicroBatchPlan;
use rescc_lang::{AlgoSpec, OpType};
use rescc_sim::{SimConfig, SimResult};
use rescc_topology::Topology;
use std::collections::HashMap;

/// A handle for issuing collectives on a fixed cluster.
///
/// Dispatch goes through a [`PlanCache`]: the first call of each distinct
/// (operator, algorithm, micro-batch shape) configuration compiles, every
/// repeat is a fingerprint lookup — none of the compile phases run again
/// (observable via [`rescc_core::phase_counters`]). Each [`RunReport`]
/// carries the cache counters at the time of the call.
pub struct Communicator {
    topo: Topology,
    compiler: Compiler,
    cache: PlanCache,
    chunk_bytes: u64,
    /// Cached specs per (op, small) bucket — algorithm construction is
    /// cheap but deterministic reuse keeps behaviour predictable.
    specs: HashMap<(OpType, bool), AlgoSpec>,
}

impl Communicator {
    /// Create a communicator over `topo` with the default ResCCL backend.
    pub fn new(topo: Topology) -> Self {
        Self {
            topo,
            compiler: Compiler::new(),
            cache: PlanCache::new(),
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            specs: HashMap::new(),
        }
    }

    /// Override the transfer chunk size (default 1 MB).
    pub fn with_chunk_bytes(mut self, chunk_bytes: u64) -> Self {
        assert!(chunk_bytes > 0);
        self.chunk_bytes = chunk_bytes;
        self
    }

    /// Fan compilation out over `threads` worker threads (the compiled
    /// plans are bit-identical to serial compilation for any value).
    pub fn with_compile_threads(mut self, threads: usize) -> Self {
        self.compiler = self.compiler.with_threads(threads);
        self
    }

    /// The topology this communicator serves.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Plan-cache counters (hits, misses, resident entries).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Pick the algorithm for an operator and buffer size.
    fn select(&mut self, op: OpType, buffer_bytes: u64) -> AlgoSpec {
        let nodes = self.topo.n_nodes();
        let g = self.topo.gpus_per_node();
        let n = self.topo.n_ranks();
        // "Small" = latency-dominated: few micro-batches to pipeline.
        let small = buffer_bytes <= (n as u64) * self.chunk_bytes * 2;
        if let Some(spec) = self.specs.get(&(op, small)) {
            return spec.clone();
        }
        let spec = match op {
            OpType::AllGather => hm_allgather(nodes, g),
            OpType::ReduceScatter => hm_reduce_scatter(nodes, g),
            OpType::AllReduce => {
                if small && n.is_power_of_two() && nodes == 1 {
                    // Log-depth butterfly wins when α dominates.
                    recursive_halving_doubling_allreduce(n)
                } else {
                    hm_allreduce(nodes, g)
                }
            }
        };
        self.specs.insert((op, small), spec.clone());
        spec
    }

    /// AllReduce `buffer_bytes` per rank.
    pub fn all_reduce(&mut self, buffer_bytes: u64) -> SimResult<RunReport> {
        self.run(OpType::AllReduce, buffer_bytes)
    }

    /// AllGather `buffer_bytes` per rank (the gathered size).
    pub fn all_gather(&mut self, buffer_bytes: u64) -> SimResult<RunReport> {
        self.run(OpType::AllGather, buffer_bytes)
    }

    /// ReduceScatter `buffer_bytes` per rank.
    pub fn reduce_scatter(&mut self, buffer_bytes: u64) -> SimResult<RunReport> {
        self.run(OpType::ReduceScatter, buffer_bytes)
    }

    fn run(&mut self, op: OpType, buffer_bytes: u64) -> SimResult<RunReport> {
        let spec = self.select(op, buffer_bytes);
        let chunk = self.chunk_bytes;
        let mb = MicroBatchPlan::plan(buffer_bytes, spec.n_chunks(), chunk);
        let plan = self
            .cache
            .get_or_compile(&self.compiler, &spec, &self.topo, &mb)?;
        let sim = plan.run_with(
            buffer_bytes,
            chunk,
            &SimConfig::default().without_validation(),
        )?;
        Ok(RunReport {
            backend: "resccl".to_string(),
            algo: spec.name().to_string(),
            buffer_bytes,
            total_tbs: plan.alloc.total_tbs(),
            max_rank_tbs: plan.alloc.max_rank_tbs(),
            sim,
            cache: Some(self.cache.stats()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn issues_all_three_collectives() {
        let mut comm = Communicator::new(Topology::a100(2, 4));
        for rep in [
            comm.all_reduce(64 * MB).unwrap(),
            comm.all_gather(64 * MB).unwrap(),
            comm.reduce_scatter(64 * MB).unwrap(),
        ] {
            assert!(rep.algbw_gbps() > 0.0);
            assert_eq!(rep.backend, "resccl");
        }
    }

    #[test]
    fn small_single_node_allreduce_uses_butterfly() {
        let mut comm = Communicator::new(Topology::a100(1, 8));
        let small = comm.all_reduce(4 * MB).unwrap();
        assert!(small.algo.starts_with("rechd-ar"));
        let large = comm.all_reduce(1024 * MB).unwrap();
        assert!(large.algo.starts_with("hm-ar"));
    }

    #[test]
    fn multi_node_uses_hierarchical_mesh() {
        let mut comm = Communicator::new(Topology::a100(4, 8));
        let rep = comm.all_reduce(256 * MB).unwrap();
        assert!(rep.algo.starts_with("hm-ar"));
    }

    #[test]
    fn spec_cache_is_stable() {
        let mut comm = Communicator::new(Topology::a100(2, 4));
        let a = comm.all_gather(128 * MB).unwrap();
        let b = comm.all_gather(128 * MB).unwrap();
        assert_eq!(a.sim, b.sim);
    }

    #[test]
    fn custom_chunk_size() {
        let mut comm = Communicator::new(Topology::a100(1, 4)).with_chunk_bytes(4 * MB);
        let rep = comm.all_gather(64 * MB).unwrap();
        assert!(rep.sim.n_micro_batches <= 4);
    }
}
