//! Plan-cache behaviour of the [`Communicator`] dispatcher: warm calls
//! must not run any compile phase, and must return the same simulation
//! result the cold call produced.
//!
//! The phase counters are process-wide, so every test in this binary that
//! compiles anything serializes on one lock — otherwise a concurrent
//! test's compile would land between two snapshots.

use rescc_backends::Communicator;
use rescc_core::{phase_counters, PlanCache};
use rescc_topology::Topology;
use std::sync::{Arc, Barrier, Mutex};

static COUNTERS: Mutex<()> = Mutex::new(());

const MB: u64 = 1 << 20;

#[test]
fn warm_dispatch_skips_all_compile_phases() {
    let _guard = COUNTERS.lock().unwrap();
    let mut comm = Communicator::new(Topology::a100(2, 4));

    let cold = comm.all_reduce(64 * MB).unwrap();
    let cold_stats = cold.cache.expect("communicator reports cache stats");
    assert_eq!((cold_stats.hits, cold_stats.misses), (0, 1));

    let before = phase_counters::snapshot();
    let warm = comm.all_reduce(64 * MB).unwrap();
    let after = phase_counters::snapshot();
    assert_eq!(
        after.since(&before),
        phase_counters::PhaseCounts::default(),
        "a warm dispatch must not run any compile phase"
    );

    let warm_stats = warm.cache.unwrap();
    assert_eq!((warm_stats.hits, warm_stats.misses), (1, 1));
    assert_eq!(cold.sim, warm.sim, "cached run must match the cold run");
}

#[test]
fn distinct_configurations_miss_repeats_hit() {
    let _guard = COUNTERS.lock().unwrap();
    let mut comm = Communicator::new(Topology::a100(2, 4));
    comm.all_reduce(256 * MB).unwrap();
    comm.all_gather(256 * MB).unwrap();
    let rep = comm.all_reduce(256 * MB).unwrap();
    let stats = rep.cache.unwrap();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
    assert_eq!(comm.cache_stats(), stats);
}

/// Multi-tenant dispatch: a plan compiled by one communicator serves
/// every other tenant of the shared cache, with no further compile.
#[test]
fn shared_cache_serves_across_communicators() {
    let _guard = COUNTERS.lock().unwrap();
    let service = Arc::new(PlanCache::new());
    let mut a = Communicator::new(Topology::a100(2, 4)).with_shared_cache(Arc::clone(&service));
    let mut b = Communicator::new(Topology::a100(2, 4)).with_shared_cache(Arc::clone(&service));
    let cold = a.all_reduce(64 * MB).unwrap();

    let before = phase_counters::snapshot();
    let warm = b.all_reduce(64 * MB).unwrap();
    let after = phase_counters::snapshot();
    assert_eq!(
        after.since(&before),
        phase_counters::PhaseCounts::default(),
        "tenant B must be served by tenant A's compile"
    );
    assert_eq!(cold.sim, warm.sim);
    let stats = service.stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    assert_eq!(a.cache_stats(), b.cache_stats());
}

/// Regression (pre-PR panic): with a zero-capacity journal, the
/// observability path used to read `journal().last().expect(...)` and
/// die. Attribution now rides on the event returned by the dispatch
/// itself, so an unjournaled cache still observes correctly.
#[test]
fn zero_capacity_journal_with_observability_does_not_panic() {
    let _guard = COUNTERS.lock().unwrap();
    let service = Arc::new(PlanCache::with_journal_capacity(0));
    let mut comm = Communicator::new(Topology::a100(2, 4))
        .with_shared_cache(Arc::clone(&service))
        .with_observability();
    let cold = comm.all_reduce(64 * MB).unwrap();
    let warm = comm.all_reduce(64 * MB).unwrap();
    let (cold_obs, warm_obs) = (cold.obs.unwrap(), warm.obs.unwrap());
    assert_eq!((cold_obs.cache_hits, cold_obs.cache_misses), (0, 1));
    assert_eq!((warm_obs.cache_hits, warm_obs.cache_misses), (1, 0));
    assert_eq!(service.journal_len(), 0);
    assert_eq!(service.dropped_events(), 2);
}

/// Regression (pre-PR misattribution): under a shared cache, each
/// tenant's observability must report *its own* dispatch outcome —
/// reading the shared journal's tail reports whichever tenant dispatched
/// last. Two threads race one configuration: together they must observe
/// exactly one miss (the single compile) and one hit/coalesced serve.
#[test]
fn concurrent_tenants_attribute_their_own_dispatch() {
    let _guard = COUNTERS.lock().unwrap();
    let service = Arc::new(PlanCache::new());
    let start = Barrier::new(2);
    let before = phase_counters::snapshot();
    let reports: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let service = Arc::clone(&service);
                let start = &start;
                s.spawn(move || {
                    let mut comm = Communicator::new(Topology::a100(2, 4))
                        .with_shared_cache(service)
                        .with_observability();
                    start.wait();
                    comm.all_reduce(64 * MB).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let ran = phase_counters::snapshot().since(&before);
    assert_eq!(
        (ran.scheduling, ran.lowering),
        (1, 1),
        "racing tenants must share one compile: {ran:?}"
    );
    let obs: Vec<_> = reports.into_iter().map(|r| r.obs.unwrap()).collect();
    for o in &obs {
        assert_eq!(
            o.cache_hits + o.cache_misses,
            1,
            "each tenant observes exactly its own dispatch"
        );
    }
    let misses: u64 = obs.iter().map(|o| o.cache_misses).sum();
    let hits: u64 = obs.iter().map(|o| o.cache_hits).sum();
    assert_eq!((misses, hits), (1, 1));
    assert_eq!(service.stats().misses, 1);
}

#[test]
fn parallel_compilation_serves_identical_plans() {
    let _guard = COUNTERS.lock().unwrap();
    let mut serial = Communicator::new(Topology::a100(2, 4));
    let mut parallel = Communicator::new(Topology::a100(2, 4)).with_compile_threads(4);
    let a = serial.reduce_scatter(128 * MB).unwrap();
    let b = parallel.reduce_scatter(128 * MB).unwrap();
    assert_eq!(a.sim, b.sim);
    assert_eq!(a.total_tbs, b.total_tbs);
}
