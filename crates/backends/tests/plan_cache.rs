//! Plan-cache behaviour of the [`Communicator`] dispatcher: warm calls
//! must not run any compile phase, and must return the same simulation
//! result the cold call produced.
//!
//! The phase counters are process-wide, so every test in this binary that
//! compiles anything serializes on one lock — otherwise a concurrent
//! test's compile would land between two snapshots.

use rescc_backends::Communicator;
use rescc_core::phase_counters;
use rescc_topology::Topology;
use std::sync::Mutex;

static COUNTERS: Mutex<()> = Mutex::new(());

const MB: u64 = 1 << 20;

#[test]
fn warm_dispatch_skips_all_compile_phases() {
    let _guard = COUNTERS.lock().unwrap();
    let mut comm = Communicator::new(Topology::a100(2, 4));

    let cold = comm.all_reduce(64 * MB).unwrap();
    let cold_stats = cold.cache.expect("communicator reports cache stats");
    assert_eq!((cold_stats.hits, cold_stats.misses), (0, 1));

    let before = phase_counters::snapshot();
    let warm = comm.all_reduce(64 * MB).unwrap();
    let after = phase_counters::snapshot();
    assert_eq!(
        after.since(&before),
        phase_counters::PhaseCounts::default(),
        "a warm dispatch must not run any compile phase"
    );

    let warm_stats = warm.cache.unwrap();
    assert_eq!((warm_stats.hits, warm_stats.misses), (1, 1));
    assert_eq!(cold.sim, warm.sim, "cached run must match the cold run");
}

#[test]
fn distinct_configurations_miss_repeats_hit() {
    let _guard = COUNTERS.lock().unwrap();
    let mut comm = Communicator::new(Topology::a100(2, 4));
    comm.all_reduce(256 * MB).unwrap();
    comm.all_gather(256 * MB).unwrap();
    let rep = comm.all_reduce(256 * MB).unwrap();
    let stats = rep.cache.unwrap();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
    assert_eq!(comm.cache_stats(), stats);
}

#[test]
fn parallel_compilation_serves_identical_plans() {
    let _guard = COUNTERS.lock().unwrap();
    let mut serial = Communicator::new(Topology::a100(2, 4));
    let mut parallel = Communicator::new(Topology::a100(2, 4)).with_compile_threads(4);
    let a = serial.reduce_scatter(128 * MB).unwrap();
    let b = parallel.reduce_scatter(128 * MB).unwrap();
    assert_eq!(a.sim, b.sim);
    assert_eq!(a.total_tbs, b.total_tbs);
}
