//! Lightweight kernel codegen: renders a [`KernelProgram`] as readable
//! pseudo-CUDA source.
//!
//! The emitted kernel is exactly the artifact §4.5 describes: one
//! `__global__` function per rank, a `switch (blockIdx.x)` over TB
//! programs, and — for ResCCL's task-level execution — an inner
//! micro-batch loop per pipeline slot, so each TB "cycles through all
//! corresponding micro-batch invocations" with no interpreter in the loop.
//! Baselines with [`LoopOrder::MicroBatchMajor`] instead wrap all slots in
//! one outer micro-batch loop (lazy, algorithm-level execution).

use crate::program::{KernelProgram, LoopOrder, Primitive};
use std::fmt::Write;

/// Render the kernel source of one rank.
pub fn emit_rank_kernel(prog: &KernelProgram, rank: usize) -> String {
    let rp = &prog.ranks[rank];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// ResCCL generated kernel — algorithm \"{}\", rank {}",
        prog.algo_name, rank
    );
    let _ = writeln!(
        out,
        "// {} thread block(s), {} pipeline slot(s), {:?} iteration",
        rp.tbs.len(),
        rp.tbs.iter().map(|t| t.slots.len()).sum::<usize>(),
        prog.loop_order
    );
    let _ = writeln!(
        out,
        "__global__ void resccl_kernel_r{rank}(ResCCLArgs* args) {{"
    );
    let _ = writeln!(out, "    switch (blockIdx.x) {{");
    for (tb_idx, tb) in rp.tbs.iter().enumerate() {
        let _ = writeln!(out, "    case {tb_idx}: {{ // TB {tb_idx}");
        if tb.slots.is_empty() {
            let _ = writeln!(
                out,
                "        // (idle channel TB — occupies an SM, does nothing)"
            );
        } else {
            match prog.loop_order {
                LoopOrder::SlotMajor => {
                    for (si, slot) in tb.slots.iter().enumerate() {
                        let _ = writeln!(
                            out,
                            "        for (int mb = {}; mb < args->n_micro_batches; mb += {}) {{",
                            tb.mb_offset,
                            tb.mb_stride.max(1)
                        );
                        let _ = writeln!(
                            out,
                            "            wait_deps(args->flags, /*task=*/{}, mb);",
                            slot.task.0
                        );
                        let prim_name = if slot.fused_with_prev {
                            match tb.slots[si - 1].primitive {
                                Primitive::RecvReduceCopy => "prim_recv_reduce_send",
                                _ => "prim_recv_copy_send",
                            }
                        } else {
                            slot.primitive.runtime_name()
                        };
                        let _ = writeln!(
                            out,
                            "            {}(args, /*peer=*/{}, /*chunk=*/{}, mb); // sub-pipeline {}{}",
                            prim_name,
                            slot.peer.0,
                            slot.chunk.0,
                            slot.sub_pipeline,
                            if slot.fused_with_prev { ", fused" } else { "" }
                        );
                        let _ = writeln!(
                            out,
                            "            post_done(args->flags, /*task=*/{}, mb);",
                            slot.task.0
                        );
                        let _ = writeln!(out, "        }}");
                    }
                }
                LoopOrder::MicroBatchMajor => {
                    let _ = writeln!(
                        out,
                        "        for (int mb = {}; mb < args->n_micro_batches; mb += {}) {{",
                        tb.mb_offset,
                        tb.mb_stride.max(1)
                    );
                    for (si, slot) in tb.slots.iter().enumerate() {
                        let _ = writeln!(
                            out,
                            "            wait_deps(args->flags, /*task=*/{}, mb);",
                            slot.task.0
                        );
                        let prim_name = if slot.fused_with_prev {
                            match tb.slots[si - 1].primitive {
                                Primitive::RecvReduceCopy => "prim_recv_reduce_send",
                                _ => "prim_recv_copy_send",
                            }
                        } else {
                            slot.primitive.runtime_name()
                        };
                        let _ = writeln!(
                            out,
                            "            {}(args, /*peer=*/{}, /*chunk=*/{}, mb);{}",
                            prim_name,
                            slot.peer.0,
                            slot.chunk.0,
                            if slot.fused_with_prev {
                                " // fused"
                            } else {
                                ""
                            }
                        );
                        let _ = writeln!(
                            out,
                            "            post_done(args->flags, /*task=*/{}, mb);",
                            slot.task.0
                        );
                    }
                    let _ = writeln!(out, "        }}");
                }
            }
        }
        let _ = writeln!(out, "        break;");
        let _ = writeln!(out, "    }}");
    }
    let _ = writeln!(out, "    default: return;");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    out
}

/// Emit the runtime header (`resccl_runtime.cuh`) the generated kernels
/// compile against: the argument block, the per-(task, micro-batch)
/// dependency flags, and the primitive family — including the fused
/// `recvCopySend` / `recvReduceSend` variants.
pub fn emit_runtime_header() -> String {
    r#"// resccl_runtime.cuh — runtime support for ResCCL generated kernels.
#pragma once
#include <cstdint>

struct ResCCLArgs {
    // Per-rank DataBuffer: nChunks chunk slots of chunk_bytes each.
    void*          buffer;
    uint64_t       chunk_bytes;
    uint32_t       n_chunks;
    int            n_micro_batches;
    // Completion flags, one per (task, micro-batch), in device memory
    // shared across ranks via peer mappings.
    volatile int*  flags;
    // Peer FIFO connections established by the control plane.
    void**         peer_fifos;
};

// Spin until every data dependency of (task, mb) has posted.
__device__ void wait_deps(volatile int* flags, int task, int mb);
// Post completion of (task, mb).
__device__ void post_done(volatile int* flags, int task, int mb);

// The primitive family (§4.5). Each call moves one chunk invocation
// between this rank's DataBuffer and the peer's FIFO.
__device__ void prim_send(ResCCLArgs* args, int peer, int chunk, int mb);
__device__ void prim_recv(ResCCLArgs* args, int peer, int chunk, int mb);
__device__ void prim_recv_reduce_copy(ResCCLArgs* args, int peer, int chunk, int mb);
// Fused transits: forward while receiving (cut-through).
__device__ void prim_recv_copy_send(ResCCLArgs* args, int peer, int chunk, int mb);
__device__ void prim_recv_reduce_send(ResCCLArgs* args, int peer, int chunk, int mb);
"#
    .to_string()
}

/// Render all ranks' kernels into one translation unit.
pub fn emit_all(prog: &KernelProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// === ResCCL lightweight kernels: {} ===",
        prog.algo_name
    );
    let _ = writeln!(out, "#include \"resccl_runtime.cuh\"");
    let _ = writeln!(out);
    for rank in 0..prog.ranks.len() {
        out.push_str(&emit_rank_kernel(prog, rank));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ExecMode, KernelProgram, LoopOrder};
    use rescc_alloc::TbAllocation;
    use rescc_ir::DepDag;
    use rescc_lang::{AlgoBuilder, OpType};
    use rescc_sched::hpds;
    use rescc_topology::Topology;

    fn program(order: LoopOrder) -> KernelProgram {
        let mut b = AlgoBuilder::new("Ring", OpType::AllGather, 4);
        for r in 0..4u32 {
            for step in 0..3u32 {
                b.recv(r, (r + 1) % 4, step, (r + 4 - step) % 4);
            }
        }
        let dag = DepDag::build(&b.build().unwrap(), &Topology::a100(1, 4)).unwrap();
        let s = hpds(&dag);
        let alloc = TbAllocation::state_based(&dag, &s);
        KernelProgram::generate("Ring", &dag, &alloc, order, ExecMode::DirectKernel)
    }

    #[test]
    fn emits_one_kernel_per_rank() {
        let p = program(LoopOrder::SlotMajor);
        let src = emit_all(&p);
        for r in 0..4 {
            assert!(src.contains(&format!("resccl_kernel_r{r}")));
        }
    }

    #[test]
    fn slot_major_has_loop_per_slot() {
        let p = program(LoopOrder::SlotMajor);
        let src = emit_rank_kernel(&p, 0);
        let loops = src.matches("for (int mb").count();
        let prims = src.matches("prim_").count();
        assert_eq!(loops, prims, "one micro-batch loop per primitive slot");
    }

    #[test]
    fn micro_batch_major_has_one_loop_per_tb() {
        let p = program(LoopOrder::MicroBatchMajor);
        let src = emit_rank_kernel(&p, 0);
        let loops = src.matches("for (int mb").count();
        let tbs = p.ranks[0]
            .tbs
            .iter()
            .filter(|t| !t.slots.is_empty())
            .count();
        assert_eq!(loops, tbs);
    }

    #[test]
    fn runtime_header_declares_every_primitive() {
        let h = emit_runtime_header();
        for prim in [
            "prim_send",
            "prim_recv",
            "prim_recv_reduce_copy",
            "prim_recv_copy_send",
            "prim_recv_reduce_send",
            "wait_deps",
            "post_done",
        ] {
            assert!(h.contains(prim), "missing {prim}");
        }
        assert!(h.contains("struct ResCCLArgs"));
    }

    #[test]
    fn fused_slots_emit_fused_primitives() {
        use crate::fusion::fuse;
        let mut b = AlgoBuilder::new("Ring", OpType::AllGather, 4);
        for r in 0..4u32 {
            for step in 0..3u32 {
                b.recv(r, (r + 1) % 4, step, (r + 4 - step) % 4);
            }
        }
        let dag = DepDag::build(&b.build().unwrap(), &Topology::a100(1, 4)).unwrap();
        let s = rescc_sched::hpds(&dag);
        let alloc = TbAllocation::state_based_chained(&dag, &s);
        let mut prog = KernelProgram::generate(
            "Ring",
            &dag,
            &alloc,
            LoopOrder::SlotMajor,
            ExecMode::DirectKernel,
        );
        let stats = fuse(&mut prog, &dag);
        assert!(stats.total() > 0, "ring transits must fuse");
        let src = emit_all(&prog);
        assert!(
            src.contains("prim_recv_copy_send"),
            "fused codegen missing:\n{src}"
        );
        assert_eq!(src.matches(", fused").count() as u32, stats.total());
    }

    #[test]
    fn every_slot_waits_and_posts() {
        let p = program(LoopOrder::SlotMajor);
        let src = emit_all(&p);
        assert_eq!(
            src.matches("wait_deps").count(),
            src.matches("post_done").count()
        );
        assert_eq!(src.matches("wait_deps").count(), p.total_slots());
    }
}
