//! The kernel program hierarchy of §4.5.
//!
//! The generation paradigm is defined across three dimensions:
//!
//! 1. **Rank dimension** — the complete set of primitives each GPU executes
//!    ([`RankProgram`]),
//! 2. **TB dimension** — the primitives assigned to each thread block
//!    ([`TbProgram`]),
//! 3. **Pipeline dimension** — the per-TB ordering of primitives by
//!    sub-pipeline index; each slot cycles through all of its micro-batch
//!    invocations ([`KernelSlot`]).
//!
//! The same structure also expresses the baseline execution models: the
//! [`LoopOrder`] distinguishes ResCCL's task-level execution (slot-major:
//! finish all micro-batches of a slot before moving on) from the lazy
//! algorithm-level execution of NCCL-style backends (micro-batch-major:
//! run every slot once per micro-batch), and [`ExecMode`] models the
//! runtime-interpreter overhead that direct kernel generation eliminates
//! (Fig. 3).

use rescc_alloc::{Direction, TbAllocation};
use rescc_ir::{DepDag, IrError, TaskId};
use rescc_lang::CommType;
use rescc_topology::{ChunkId, Rank};
use serde::{Deserialize, Serialize};

/// A communication primitive, NCCL-style.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Primitive {
    /// Push a chunk to the peer.
    Send,
    /// Receive a chunk and copy it into the local buffer slot.
    Recv,
    /// Receive a chunk, reduce it with the local value, store the result
    /// (`recvReduceCopy`).
    RecvReduceCopy,
}

impl Primitive {
    /// Derive the primitive for a task side.
    pub fn for_side(dir: Direction, comm: CommType) -> Self {
        match (dir, comm) {
            (Direction::Send, _) => Primitive::Send,
            (Direction::Recv, CommType::Recv) => Primitive::Recv,
            (Direction::Recv, CommType::Rrc) => Primitive::RecvReduceCopy,
        }
    }

    /// The runtime function name emitted by codegen.
    pub fn runtime_name(self) -> &'static str {
        match self {
            Primitive::Send => "prim_send",
            Primitive::Recv => "prim_recv",
            Primitive::RecvReduceCopy => "prim_recv_reduce_copy",
        }
    }
}

/// How a TB iterates its slots against micro-batches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoopOrder {
    /// Task-level execution (ResCCL): each slot runs *all* micro-batch
    /// invocations before the TB advances to the next slot.
    SlotMajor,
    /// Algorithm-level execution (NCCL/MSCCL): every micro-batch runs all
    /// slots once, in order, before the next micro-batch starts.
    MicroBatchMajor,
}

/// Runtime execution engine.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ExecMode {
    /// Directly generated lightweight kernel: no per-invocation control
    /// overhead beyond the transfer itself.
    DirectKernel,
    /// Runtime interpreter (MSCCL-style): every primitive invocation pays a
    /// fixed parse/dispatch overhead for loading the algorithm step,
    /// resolving routing, and reading TB assignments from memory.
    Interpreter {
        /// Overhead per primitive invocation, in ns.
        per_invocation_overhead_ns: f64,
    },
}

impl ExecMode {
    /// The interpreter overhead calibrated to reproduce the ≈17% average
    /// loss of Fig. 3 at the paper's 1 MB chunk size.
    pub fn default_interpreter() -> Self {
        ExecMode::Interpreter {
            per_invocation_overhead_ns: 9_000.0,
        }
    }

    /// The per-invocation overhead in ns (0 for direct kernels).
    pub fn overhead_ns(self) -> f64 {
        match self {
            ExecMode::DirectKernel => 0.0,
            ExecMode::Interpreter {
                per_invocation_overhead_ns,
            } => per_invocation_overhead_ns,
        }
    }
}

/// One pipeline slot of a TB: a primitive, its task, peer and chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelSlot {
    /// The transmission task this slot implements one side of.
    pub task: TaskId,
    /// The primitive executed.
    pub primitive: Primitive,
    /// The remote rank.
    pub peer: Rank,
    /// The chunk operated on.
    pub chunk: ChunkId,
    /// Sub-pipeline index (pipeline dimension).
    pub sub_pipeline: usize,
    /// Set by the fusion pass: this send executes fused with the previous
    /// receive slot (`recvCopySend` / `recvReduceSend`), eliding its
    /// startup latency.
    pub fused_with_prev: bool,
}

impl KernelSlot {
    /// Whether this is the sending side of its task.
    pub fn is_send(&self) -> bool {
        self.primitive == Primitive::Send
    }
}

/// Lower one rank's TB plan into its [`RankProgram`].
fn lower_rank(dag: &DepDag, r: usize, plan: &rescc_alloc::RankTbPlan) -> RankProgram {
    RankProgram {
        rank: Rank::new(r as u32),
        tbs: plan
            .tbs
            .iter()
            .map(|tb| TbProgram {
                slots: tb
                    .slots
                    .iter()
                    .map(|slot| {
                        let t = dag.task(slot.task);
                        KernelSlot {
                            task: slot.task,
                            primitive: Primitive::for_side(slot.dir, t.comm),
                            peer: if slot.dir == Direction::Send {
                                t.dst
                            } else {
                                t.src
                            },
                            chunk: t.chunk,
                            sub_pipeline: slot.sub_pipeline,
                            fused_with_prev: false,
                        }
                    })
                    .collect(),
                mb_stride: tb.mb_stride,
                mb_offset: tb.mb_offset,
            })
            .collect(),
    }
}

/// The program of one TB.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TbProgram {
    /// Ordered pipeline slots.
    pub slots: Vec<KernelSlot>,
    /// Micro-batch stride (1 = the TB executes every micro-batch).
    pub mb_stride: u32,
    /// Micro-batch offset within the stride (channel index).
    pub mb_offset: u32,
}

impl TbProgram {
    /// Does this TB execute micro-batch `mb`?
    pub fn owns_micro_batch(&self, mb: u32) -> bool {
        mb % self.mb_stride.max(1) == self.mb_offset
    }
}

/// The program of one rank: all of its TBs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankProgram {
    /// The rank this program runs on.
    pub rank: Rank,
    /// One program per TB launched on this rank.
    pub tbs: Vec<TbProgram>,
}

/// A complete generated kernel program for the whole collective.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelProgram {
    /// Algorithm name (for reports and codegen headers).
    pub algo_name: String,
    /// Per-rank programs, indexed by rank.
    pub ranks: Vec<RankProgram>,
    /// Slot iteration order.
    pub loop_order: LoopOrder,
    /// Execution engine.
    pub exec: ExecMode,
    /// Micro-batch barrier groups: `barrier_groups[task] = group`, and no
    /// invocation of a task may start micro-batch `m+1` before every task
    /// in its group has completed micro-batch `m`.
    ///
    /// * `None` — ResCCL's task-level execution: no barrier, invocations
    ///   pipeline freely across micro-batches (Eq. 5).
    /// * all tasks in one group — lazy algorithm-level execution: the whole
    ///   algorithm completes a micro-batch before the next starts (Eq. 3).
    /// * one group per stage — MSCCL-style stage-level execution: each
    ///   stage iterates its micro-batches lazily, stages pipeline against
    ///   each other (Eq. 4).
    pub barrier_groups: Option<Vec<u32>>,
    /// Barrier stride: with `k` parallel channels each owning every `k`-th
    /// micro-batch, the lazy barrier applies within a channel's own stream —
    /// micro-batch `m` waits on `m − k`, not `m − 1`. Defaults to 1.
    pub barrier_stride: u32,
}

impl KernelProgram {
    /// Lower a scheduled, TB-allocated algorithm into a kernel program.
    pub fn generate(
        algo_name: impl Into<String>,
        dag: &DepDag,
        alloc: &TbAllocation,
        loop_order: LoopOrder,
        exec: ExecMode,
    ) -> Self {
        Self::generate_with_threads(algo_name, dag, alloc, loop_order, exec, 1)
    }

    /// [`KernelProgram::generate`] with per-rank lowering fanned out over
    /// `threads` worker threads.
    ///
    /// Each rank's program is a pure function of that rank's TB plan, so
    /// ranks lower independently; collecting them in rank order makes the
    /// output identical for any thread count.
    pub fn generate_with_threads(
        algo_name: impl Into<String>,
        dag: &DepDag,
        alloc: &TbAllocation,
        loop_order: LoopOrder,
        exec: ExecMode,
        threads: usize,
    ) -> Self {
        let n_ranks = alloc.per_rank.len();
        let ranks: Vec<RankProgram> = if threads <= 1 || n_ranks <= 1 {
            alloc
                .per_rank
                .iter()
                .enumerate()
                .map(|(r, plan)| lower_rank(dag, r, plan))
                .collect()
        } else {
            let workers = threads.min(n_ranks);
            let stride = n_ranks.div_ceil(workers);
            let mut out: Vec<Option<RankProgram>> = (0..n_ranks).map(|_| None).collect();
            std::thread::scope(|scope| {
                for (base, (slots, plans)) in out
                    .chunks_mut(stride)
                    .zip(alloc.per_rank.chunks(stride))
                    .enumerate()
                {
                    scope.spawn(move || {
                        for (k, (slot, plan)) in slots.iter_mut().zip(plans).enumerate() {
                            *slot = Some(lower_rank(dag, base * stride + k, plan));
                        }
                    });
                }
            });
            out.into_iter()
                .map(|r| r.expect("all ranks lowered"))
                .collect()
        };
        Self {
            algo_name: algo_name.into(),
            ranks,
            loop_order,
            exec,
            barrier_groups: None,
            barrier_stride: 1,
        }
    }

    /// Attach micro-batch barrier groups (see [`KernelProgram::barrier_groups`]).
    ///
    /// # Panics
    /// Panics if `groups.len()` differs from the DAG's task count used at
    /// generation (callers pass one group id per task).
    pub fn with_barrier_groups(mut self, groups: Vec<u32>) -> Self {
        self.barrier_groups = Some(groups);
        self
    }

    /// Convenience: one global barrier group (algorithm-level execution).
    pub fn with_global_barrier(self, n_tasks: usize) -> Self {
        self.with_barrier_groups(vec![0; n_tasks])
    }

    /// Set the barrier stride (see [`KernelProgram::barrier_stride`]).
    pub fn with_barrier_stride(mut self, stride: u32) -> Self {
        assert!(stride >= 1, "barrier stride must be at least 1");
        self.barrier_stride = stride;
        self
    }

    /// Total TBs launched (including empty channel TBs, which still occupy
    /// SM resources).
    pub fn total_tbs(&self) -> usize {
        self.ranks.iter().map(|r| r.tbs.len()).sum()
    }

    /// Total primitive slots across all TBs.
    pub fn total_slots(&self) -> usize {
        self.ranks
            .iter()
            .flat_map(|r| r.tbs.iter())
            .map(|tb| tb.slots.len())
            .sum()
    }

    /// Validate structural invariants: every task has exactly one Send slot
    /// (on its src rank) and one receive-side slot (on its dst rank), with
    /// the primitive matching the task's comm type.
    pub fn validate(&self, dag: &DepDag) -> Result<(), IrError> {
        let mut send = vec![0u32; dag.len()];
        let mut recv = vec![0u32; dag.len()];
        for rp in &self.ranks {
            for tb in &rp.tbs {
                for slot in &tb.slots {
                    let t = dag.task(slot.task);
                    match slot.primitive {
                        Primitive::Send => {
                            if rp.rank != t.src || slot.peer != t.dst {
                                return Err(IrError::new(format!(
                                    "send slot of {} misplaced (rank {}, peer {})",
                                    slot.task, rp.rank, slot.peer
                                )));
                            }
                            send[slot.task.index()] += 1;
                        }
                        Primitive::Recv | Primitive::RecvReduceCopy => {
                            let want = Primitive::for_side(Direction::Recv, t.comm);
                            if slot.primitive != want {
                                return Err(IrError::new(format!(
                                    "receive slot of {} uses {:?}, expected {want:?}",
                                    slot.task, slot.primitive
                                )));
                            }
                            if rp.rank != t.dst || slot.peer != t.src {
                                return Err(IrError::new(format!(
                                    "recv slot of {} misplaced (rank {}, peer {})",
                                    slot.task, rp.rank, slot.peer
                                )));
                            }
                            recv[slot.task.index()] += 1;
                        }
                    }
                    if slot.chunk != t.chunk {
                        return Err(IrError::new(format!(
                            "slot of {} names chunk {}, task moves {}",
                            slot.task, slot.chunk, t.chunk
                        )));
                    }
                }
            }
        }
        for i in 0..dag.len() {
            if send[i] == 0 || recv[i] == 0 {
                return Err(IrError::new(format!("task t{i} missing a kernel slot")));
            }
            if send[i] != recv[i] {
                return Err(IrError::new(format!(
                    "task t{i} has {} send slots but {} recv slots",
                    send[i], recv[i]
                )));
            }
        }
        Ok(())
    }
}
