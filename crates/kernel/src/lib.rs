//! # rescc-kernel
//!
//! Lightweight kernel generation (§4.5): the three-dimensional kernel
//! paradigm (rank → TB → pipeline slot), generation from a scheduled and
//! TB-allocated algorithm, pseudo-CUDA codegen, and the execution-mode
//! model that distinguishes directly-generated kernels from MSCCL-style
//! runtime interpretation (Fig. 3).
//!
//! ```
//! use rescc_kernel::{KernelProgram, LoopOrder, ExecMode, emit_rank_kernel};
//! use rescc_alloc::TbAllocation;
//! use rescc_ir::DepDag;
//! use rescc_lang::{AlgoBuilder, OpType};
//! use rescc_sched::hpds;
//! use rescc_topology::Topology;
//!
//! let mut b = AlgoBuilder::new("Ring", OpType::AllGather, 4);
//! for r in 0..4u32 {
//!     for step in 0..3u32 {
//!         b.recv(r, (r + 1) % 4, step, (r + 4 - step) % 4);
//!     }
//! }
//! let dag = DepDag::build(&b.build().unwrap(), &Topology::a100(1, 4)).unwrap();
//! let sched = hpds(&dag);
//! let alloc = TbAllocation::state_based(&dag, &sched);
//! let prog = KernelProgram::generate("Ring", &dag, &alloc,
//!     LoopOrder::SlotMajor, ExecMode::DirectKernel);
//! prog.validate(&dag).unwrap();
//! let cuda = emit_rank_kernel(&prog, 0);
//! assert!(cuda.contains("__global__ void resccl_kernel_r0"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codegen;
mod fusion;
mod program;

pub use codegen::{emit_all, emit_rank_kernel, emit_runtime_header};
pub use fusion::{fuse, FusionStats};
pub use program::{
    ExecMode, KernelProgram, KernelSlot, LoopOrder, Primitive, RankProgram, TbProgram,
};
