//! Primitive fusion: `recv → send` chains collapsed into NCCL's fused
//! primitives.
//!
//! When a TB's pipeline contains a receive-side slot for task A immediately
//! followed by the send-side slot of task B with
//!
//! * the same chunk,
//! * `B` consuming the data `A` delivered (`A.dst == B.src` and
//!   `A ∈ preds(B)`),
//!
//! the two primitives can execute as one fused `recvCopySend` /
//! `recvReduceSend`: the kernel forwards the incoming data without
//! returning to the flag-wait loop or bouncing through the staging buffer,
//! eliding the downstream primitive's startup latency α. This is exactly
//! the primitive family NCCL uses inside ring kernels; ResCCL's generated
//! kernels can apply it wherever the schedule places a chain's receive and
//! forward on one TB.
//!
//! The pass is purely a program transformation: it marks the send slot as
//! [`KernelSlot::fused_with_prev`], updates codegen, and reports what it
//! found. The simulator honors the mark by skipping the fused invocation's
//! α (the transfer itself still pays bandwidth and contention).

use crate::program::{KernelProgram, Primitive};
use rescc_ir::DepDag;
use serde::{Deserialize, Serialize};

/// What the fusion pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusionStats {
    /// `recv + send` pairs fused into `recvCopySend`.
    pub copy_send: u32,
    /// `recvReduceCopy + send` pairs fused into `recvReduceSend`.
    pub reduce_send: u32,
}

impl FusionStats {
    /// Total fused pairs.
    pub fn total(&self) -> u32 {
        self.copy_send + self.reduce_send
    }
}

/// Apply the fusion pass to a generated program.
///
/// Fused programs execute micro-batch-major (each micro-batch walks the
/// pipeline, pairs issuing as one `recvCopySend`), exactly like NCCL's
/// ring kernels — the backend switches the loop order when fusing, which
/// keeps every TB on one globally consistent execution order (the
/// deadlock-freedom invariant).
pub fn fuse(program: &mut KernelProgram, dag: &DepDag) -> FusionStats {
    let mut stats = FusionStats::default();
    // Adjacency-only: a send fuses with the slot immediately before it.
    // Reordering slots is deliberately avoided — every TB executes in one
    // consistent global order, which is what makes rendezvous deadlocks
    // impossible; the chained allocation is responsible for placing
    // transit pairs adjacently (it keys a forward just after its feeder in
    // the adjusted global order).
    for rank_prog in &mut program.ranks {
        for tb in &mut rank_prog.tbs {
            for i in 1..tb.slots.len() {
                let (head, tail) = tb.slots.split_at_mut(i);
                let prev = &head[i - 1];
                let cur = &mut tail[0];
                if cur.primitive != Primitive::Send || cur.fused_with_prev {
                    continue;
                }
                let prev_is_recv =
                    matches!(prev.primitive, Primitive::Recv | Primitive::RecvReduceCopy);
                if !prev_is_recv
                    || prev.chunk != cur.chunk
                    || dag.task(prev.task).dst != dag.task(cur.task).src
                    || !dag.preds(cur.task).contains(&prev.task)
                {
                    continue;
                }
                cur.fused_with_prev = true;
                match prev.primitive {
                    Primitive::Recv => stats.copy_send += 1,
                    Primitive::RecvReduceCopy => stats.reduce_send += 1,
                    Primitive::Send => unreachable!("matched a receive"),
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ExecMode, KernelProgram, LoopOrder};
    use rescc_alloc::TbAllocation;
    use rescc_ir::DepDag;
    use rescc_lang::{AlgoBuilder, OpType};
    use rescc_sched::hpds;
    use rescc_topology::Topology;

    /// A 4-rank chain: chunk 0 travels 0→1→2→3; rank 1 and 2 both receive
    /// and forward, so their merged TBs expose fusion pairs.
    fn chain_program() -> (DepDag, KernelProgram) {
        let mut b = AlgoBuilder::new("chain", OpType::AllGather, 4);
        b.recv(0, 1, 0, 0).recv(1, 2, 1, 0).recv(2, 3, 2, 0);
        // Make it a complete AllGather so validation holds elsewhere if
        // needed; fusion only needs the structure.
        let spec = b.build().unwrap();
        let topo = Topology::a100(1, 4);
        let dag = DepDag::build(&spec, &topo).unwrap();
        let sched = hpds(&dag);
        let alloc = TbAllocation::state_based(&dag, &sched);
        let prog = KernelProgram::generate(
            "chain",
            &dag,
            &alloc,
            LoopOrder::SlotMajor,
            ExecMode::DirectKernel,
        );
        (dag, prog)
    }

    #[test]
    fn fuses_recv_then_forward_on_one_tb() {
        let (dag, mut prog) = chain_program();
        // Ranks 1 and 2 each have a recv slot and the dependent send slot.
        // Whether they land on one TB depends on endpoint merging; count
        // whatever the allocation exposes and check consistency.
        let stats = fuse(&mut prog, &dag);
        let marked: u32 = prog
            .ranks
            .iter()
            .flat_map(|r| r.tbs.iter())
            .flat_map(|t| t.slots.iter())
            .filter(|s| s.fused_with_prev)
            .count() as u32;
        assert_eq!(stats.total(), marked);
    }

    #[test]
    fn fusion_applies_to_any_loop_order() {
        let (dag, prog) = chain_program();
        let mut mbm = prog;
        mbm.loop_order = LoopOrder::MicroBatchMajor;
        let stats_mbm = fuse(&mut mbm, &dag);
        let (dag2, mut slot) = chain_program();
        let stats_slot = fuse(&mut slot, &dag2);
        assert_eq!(stats_mbm, stats_slot);
    }

    #[test]
    fn fused_flag_only_on_sends() {
        let (dag, mut prog) = chain_program();
        fuse(&mut prog, &dag);
        for slot in prog
            .ranks
            .iter()
            .flat_map(|r| r.tbs.iter())
            .flat_map(|t| t.slots.iter())
        {
            if slot.fused_with_prev {
                assert_eq!(slot.primitive, Primitive::Send);
            }
        }
    }
}
