//! # ResCCL — Resource-Efficient Scheduling for Collective Communication
//!
//! A complete Rust implementation of the ResCCL collective-communication
//! backend (SIGCOMM 2025), together with every substrate it needs: the
//! ResCCLang DSL, a dependency-DAG IR, the HPDS primitive-level scheduler,
//! flexible (state-based) thread-block allocation, lightweight kernel
//! generation, a deterministic discrete-event GPU-cluster simulator, the
//! NCCL/MSCCL baseline backend models, an algorithm library (ring, double
//! binary tree, hierarchical mesh, synthesizer emulations), and a
//! Megatron-style end-to-end training model.
//!
//! The crate is a façade: each subsystem lives in its own crate and is
//! re-exported here as a module.
//!
//! ## Quickstart
//!
//! ```
//! use rescc::core::Compiler;
//! use rescc::algos::hm_allreduce;
//! use rescc::topology::Topology;
//!
//! // Two servers × four A100s, running the paper's hierarchical-mesh
//! // AllReduce through the full ResCCL pipeline.
//! let topo = Topology::a100(2, 4);
//! let plan = Compiler::new().compile_spec(&hm_allreduce(2, 4), &topo).unwrap();
//! let report = plan.run(256 << 20, 1 << 20).unwrap();
//! assert_eq!(report.data_valid, Some(true)); // machine-checked collective
//! println!("algbw = {:.1} GB/s with {} TBs",
//!     report.algo_bandwidth_gbps(256 << 20), plan.total_tbs());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Cluster topology and the α–β–γ link cost model.
pub mod topology {
    pub use rescc_topology::*;
}

/// The ResCCLang DSL: parser, evaluator, builder, pretty-printer.
pub mod lang {
    pub use rescc_lang::*;
}

/// Dependency-DAG IR and micro-batch planning.
pub mod ir {
    pub use rescc_ir::*;
}

/// Schedulers: HPDS, round-robin, stage partitioning, the §3 cost model.
pub mod sched {
    pub use rescc_sched::*;
}

/// Thread-block allocation: connection-based vs state-based.
pub mod alloc {
    pub use rescc_alloc::*;
}

/// Kernel program representation and pseudo-CUDA codegen.
pub mod kernel {
    pub use rescc_kernel::*;
}

/// Cross-phase static analysis (lints RA001–RA005) over compiled plans.
pub mod analyze {
    pub use rescc_analyze::*;
}

/// The deterministic discrete-event cluster simulator.
pub mod sim {
    pub use rescc_sim::*;
}

/// Cross-layer observability: spans, counters, Chrome-trace export.
pub mod obs {
    pub use rescc_obs::*;
}

/// The collective algorithm library.
pub mod algos {
    pub use rescc_algos::*;
}

/// The NCCL / MSCCL / ResCCL backend models.
pub mod backends {
    pub use rescc_backends::*;
}

/// Megatron-style end-to-end training throughput model.
pub mod train {
    pub use rescc_train::*;
}

/// The ResCCL offline compiler and compiled plans.
pub mod core {
    pub use rescc_core::*;
}
