//! Offline stand-in for the `criterion` benchmark harness (the build
//! container cannot reach crates.io). Implements the subset the workspace's
//! benches use — `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Throughput::Elements`, and
//! `Bencher::iter` — with a simple warmup + timed-batch measurement loop.
//! Reports mean per-iteration wall time (and element throughput when set)
//! to stdout; no statistical analysis, plots, or baselines.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark (shim honours `Elements`).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Two-part benchmark id: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs the closure under measurement.
pub struct Bencher {
    /// (mean wall time per iteration, iterations measured)
    result: Option<(Duration, u64)>,
    sample_size: u64,
}

impl Bencher {
    /// Warm up, then time `sample_size` batches of the routine and record
    /// the mean per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: run until ~20ms elapsed to size batches.
        let cal_start = Instant::now();
        let mut cal_iters = 0u64;
        while cal_start.elapsed() < Duration::from_millis(20) {
            std_black_box(routine());
            cal_iters += 1;
        }
        let per_iter = cal_start.elapsed().as_nanos() as u64 / cal_iters.max(1);
        // Aim for ~10ms per batch, capped so quick runs stay quick.
        let batch = (10_000_000 / per_iter.max(1)).clamp(1, 10_000);

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.result = Some((total / iters.max(1) as u32, iters));
    }
}

/// A named group of benchmarks sharing sample-size / throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            result: None,
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            result: None,
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&mut self, id: &str, b: &Bencher) {
        let Some((mean, iters)) = b.result else {
            println!("{}/{id}: no measurement", self.name);
            return;
        };
        let line = match self.throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE);
                format!(
                    "{}/{id}: {:>12.3?} /iter  ({iters} iters, {per_sec:.0} elem/s)",
                    self.name, mean
                )
            }
            Some(Throughput::Bytes(n)) => {
                let mbps = n as f64 / 1e6 / mean.as_secs_f64().max(f64::MIN_POSITIVE);
                format!(
                    "{}/{id}: {:>12.3?} /iter  ({iters} iters, {mbps:.1} MB/s)",
                    self.name, mean
                )
            }
            None => format!("{}/{id}: {:>12.3?} /iter  ({iters} iters)", self.name, mean),
        };
        println!("{line}");
        self.criterion
            .results
            .push((format!("{}/{id}", self.name), mean));
    }
}

/// Top-level harness handle passed to each benchmark function.
#[derive(Default)]
pub struct Criterion {
    /// (full benchmark id, mean per-iteration duration) in run order.
    pub results: Vec<(String, Duration)>,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 30,
            throughput: None,
            criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let id = id.to_string();
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
