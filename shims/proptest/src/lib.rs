//! Offline stand-in for the `proptest` crate (the build container cannot
//! reach crates.io). Provides the subset this workspace uses: the
//! `proptest!` macro (with optional `#![proptest_config(..)]`), integer
//! range strategies, `prop::collection::vec`, `proptest::bool::ANY`, and
//! the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Unlike the real crate there is no shrinking: a failing case reports the
//! generated inputs verbatim. Case generation is deterministic per test
//! name, so failures reproduce exactly across runs.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// An assertion failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration; only `cases` is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic generator (SplitMix64), seeded from the test name so
    /// every run of a given test sees the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Self { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values (no shrinking in the shim).
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_uint_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.end > self.start, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    impl_uint_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.end > self.start, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range!(i8, i16, i32, i64, isize);

    /// Uniform `bool` (see `crate::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Length specification for collection strategies; conversions from
    /// `usize` ranges pin bare `a..b` literals to `usize`, as in the real
    /// crate.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub start: usize,
        pub end: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            Self {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                start: n,
                end: n + 1,
            }
        }
    }

    /// `Vec` of values from `element`, with length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirrors `proptest::bool`.
pub mod bool {
    /// Strategy producing either boolean with equal probability.
    pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
}

/// Mirrors the `prop` module alias exported by the real prelude.
pub mod prop {
    pub mod collection {
        use crate::strategy::{SizeRange, Strategy, VecStrategy};

        /// `Vec` strategy: elements from `element`, length from `len`
        /// (typically a `usize` range).
        pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                len: len.into(),
            }
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(concat!(
                    "assertion failed: ",
                    stringify!($cond)
                )),
            );
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                )),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)*),
                    l,
                    r
                )),
            );
        }
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// The `proptest!` block: each inner `fn` becomes a `#[test]` that runs
/// `config.cases` generated cases (rejected cases are skipped, not
/// counted as failures).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => continue,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => panic!(
                        "proptest case #{} failed: {}\ninputs: {}",
                        _case, msg, inputs
                    ),
                }
            }
        }
    )*};
}
