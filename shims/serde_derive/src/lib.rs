//! No-op derive macros standing in for `serde_derive` in this air-gapped
//! workspace. The repo derives `Serialize`/`Deserialize` on its public
//! types so downstream users can persist them, but nothing in-tree
//! serializes through serde — the derives expand to nothing here.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
