//! Offline stand-in for the `serde` facade. The container this workspace
//! builds in has no network access to crates.io, so the real serde cannot
//! be vendored; this shim provides the trait names and the derive macros
//! the codebase references. The derives expand to nothing — nothing
//! in-tree performs serde serialization, the derives exist so the public
//! types advertise intent and the real serde can be dropped in unchanged
//! once a registry is reachable.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the shim).
pub trait Deserialize<'de> {}
