//! Offline stand-in for the `rand` crate (the build container cannot reach
//! crates.io). Implements the small slice of the 0.8 API this workspace
//! uses — `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range` — on top
//! of the SplitMix64/xoshiro256** generators, which are statistically
//! solid for simulation jitter and fully deterministic per seed.

#![forbid(unsafe_code)]

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types a generator can sample uniformly.
pub trait Standard: Sized {
    /// Sample one value from `rng`.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

/// The minimal core-generator interface.
pub trait RngCore {
    /// Next 64 uniformly-random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` (uniform over its `Standard` domain;
    /// `f64` samples in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform integer in `[range.start, range.end)`.
    fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64
    where
        Self: Sized,
    {
        assert!(range.end > range.start, "gen_range needs a non-empty range");
        let span = range.end - range.start;
        // Widening-multiply rejection-free mapping (Lemire); bias is
        // negligible for simulation purposes.
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi
    }
}

impl<T: RngCore> Rng for T {}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded through SplitMix64 — deterministic, fast, and
    /// API-compatible with `rand::rngs::StdRng` for this workspace's use.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(10..20);
            assert!((10..20).contains(&x));
        }
    }

    use super::RngCore;
}
