//! Cross-backend integration invariants: the relationships the paper's
//! evaluation depends on must hold across algorithms and topologies.

use rescc::algos::{
    hm_allgather, hm_allreduce, nccl_rings_allreduce, taccl_like_allgather, taccl_like_allreduce,
};
use rescc::backends::{Backend, MscclBackend, NcclBackend, RescclBackend};
use rescc::topology::Topology;

const MB: u64 = 1 << 20;

#[test]
fn resccl_wins_at_large_buffers_across_shapes() {
    // Figs. 6/8: for every tested shape, large-buffer HM collectives run
    // faster on ResCCL than on the MSCCL model.
    let resccl = RescclBackend::default();
    let msccl = MscclBackend::default();
    for (nodes, g) in [(2u32, 4u32), (2, 8), (4, 4)] {
        let topo = Topology::a100(nodes, g);
        for spec in [hm_allgather(nodes, g), hm_allreduce(nodes, g)] {
            let buffer = 512 * MB;
            let r = resccl.run_unchecked(&spec, &topo, buffer, MB).unwrap();
            let m = msccl.run_unchecked(&spec, &topo, buffer, MB).unwrap();
            assert!(
                r.algbw_gbps() > m.algbw_gbps(),
                "{} on {nodes}x{g}: resccl {:.1} <= msccl {:.1}",
                spec.name(),
                r.algbw_gbps(),
                m.algbw_gbps()
            );
        }
    }
}

#[test]
fn resccl_tb_budget_always_smaller() {
    // Table 3: state-based allocation always launches fewer TBs than the
    // 4-channel connection-based allocation running the same algorithm.
    let resccl = RescclBackend::default();
    let msccl = MscclBackend::default();
    for (nodes, g) in [(2u32, 4u32), (2, 8), (4, 4), (4, 8)] {
        let topo = Topology::a100(nodes, g);
        for spec in [
            hm_allreduce(nodes, g),
            hm_allgather(nodes, g),
            taccl_like_allgather(nodes, g),
            taccl_like_allreduce(nodes, g),
        ] {
            let r = resccl.run_unchecked(&spec, &topo, 32 * MB, MB).unwrap();
            let m = msccl.run_unchecked(&spec, &topo, 32 * MB, MB).unwrap();
            assert!(
                r.total_tbs < m.total_tbs,
                "{} on {nodes}x{g}: resccl TBs {} !< msccl TBs {}",
                spec.name(),
                r.total_tbs,
                m.total_tbs
            );
        }
    }
}

#[test]
fn resccl_avg_idle_always_lower_on_expert_algorithms() {
    let resccl = RescclBackend::default();
    let msccl = MscclBackend::default();
    for (nodes, g) in [(2u32, 4u32), (2, 8), (4, 4)] {
        let topo = Topology::a100(nodes, g);
        let spec = hm_allreduce(nodes, g);
        let r = resccl.run_unchecked(&spec, &topo, 256 * MB, MB).unwrap();
        let m = msccl.run_unchecked(&spec, &topo, 256 * MB, MB).unwrap();
        assert!(
            r.sim.avg_idle_ratio() < m.sim.avg_idle_ratio(),
            "{nodes}x{g}: resccl idle {:.2} >= msccl idle {:.2}",
            r.sim.avg_idle_ratio(),
            m.sim.avg_idle_ratio()
        );
    }
}

#[test]
fn interpreter_overhead_is_in_paper_range() {
    // Fig. 3: the interpreter costs a double-digit percentage, not 2x.
    let topo = Topology::a100(2, 8);
    let spec = hm_allgather(2, 8);
    let interpreted = MscclBackend::default();
    let direct = MscclBackend {
        interpreter_overhead_ns: 0.0,
        ..MscclBackend::default()
    };
    let ti = interpreted
        .run_unchecked(&spec, &topo, 256 * MB, MB)
        .unwrap()
        .sim
        .completion_ns;
    let td = direct
        .run_unchecked(&spec, &topo, 256 * MB, MB)
        .unwrap()
        .sim
        .completion_ns;
    let loss = 1.0 - td / ti;
    assert!(
        (0.03..0.45).contains(&loss),
        "interpreter loss {loss} outside the plausible band around 17%"
    );
}

#[test]
fn backends_are_deterministic() {
    let topo = Topology::a100(2, 4);
    let spec = hm_allreduce(2, 4);
    for backend in [
        &NcclBackend::default() as &dyn Backend,
        &MscclBackend::default(),
        &RescclBackend::default(),
    ] {
        let a = backend.run_unchecked(&spec, &topo, 64 * MB, MB).unwrap();
        let b = backend.run_unchecked(&spec, &topo, 64 * MB, MB).unwrap();
        assert_eq!(a.sim, b.sim, "{} is nondeterministic", backend.name());
    }
}

#[test]
fn nccl_multiring_beats_flat_ring_across_nodes() {
    // Sanity of the NCCL baseline itself: the multi-ring layout (one ring
    // per NIC) must beat a single flat ring that funnels all inter-node
    // traffic through one NIC pair.
    let topo = Topology::a100(2, 8);
    let nccl = NcclBackend::default();
    let multi = nccl_rings_allreduce(2, 8, 4);
    let flat = nccl_rings_allreduce(2, 8, 1);
    let tm = nccl.run_unchecked(&multi, &topo, 512 * MB, MB).unwrap();
    let tf = nccl.run_unchecked(&flat, &topo, 512 * MB, MB).unwrap();
    assert!(
        tm.algbw_gbps() > 1.5 * tf.algbw_gbps(),
        "multi-ring {:.1} should be well above flat ring {:.1}",
        tm.algbw_gbps(),
        tf.algbw_gbps()
    );
}

#[test]
fn small_buffers_shrink_resccl_advantage() {
    // §5.2: small messages yield fewer micro-batches and fewer scheduling
    // opportunities — ResCCL's edge over MSCCL must be larger at 1 GB than
    // at 8 MB.
    let topo = Topology::a100(2, 8);
    let spec = hm_allreduce(2, 8);
    let resccl = RescclBackend::default();
    let msccl = MscclBackend::default();
    let speedup = |buffer: u64| {
        let r = resccl.run_unchecked(&spec, &topo, buffer, MB).unwrap();
        let m = msccl.run_unchecked(&spec, &topo, buffer, MB).unwrap();
        m.sim.completion_ns / r.sim.completion_ns
    };
    let small = speedup(8 * MB);
    let large = speedup(1024 * MB);
    assert!(
        large > small,
        "speedup should grow with buffer size: 8MB {small:.2}x vs 1GB {large:.2}x"
    );
}
