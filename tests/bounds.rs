//! Soundness anchors: no simulated completion may beat the information-
//! theoretic lower bounds of its DAG (critical path, bottleneck resource),
//! and pipelined completions must stay below the fully-serial upper bound.

use rescc::algos::{hm_allgather, hm_allreduce, ring_allgather, taccl_like_allgather};
use rescc::backends::{Backend, MscclBackend, NcclBackend, RescclBackend};
use rescc::ir::{lower_bound_ns, DepDag};
use rescc::lang::AlgoSpec;
use rescc::topology::Topology;

const MB: u64 = 1 << 20;

/// Per-task serial cost under the topology's parameters for a single
/// invocation of `chunk_bytes` at the TB-limited single-stream rate.
fn task_cost(topo: &Topology, chunk_bytes: u64) -> impl Fn(&rescc::ir::Task) -> f64 + Copy + '_ {
    move |t: &rescc::ir::Task| {
        let conn = topo.connection(t.src, t.dst);
        conn.params.alpha_ns
            + conn.extra_latency_ns
            + chunk_bytes as f64 / conn.params.tb_bw_bytes_per_ns
    }
}

fn check_bounds(spec: &AlgoSpec, topo: &Topology) {
    let dag = DepDag::build(spec, topo).unwrap();
    let chunk = MB;
    let n_mb = 4u64;
    let buffer = n_mb * spec.n_chunks() as u64 * chunk;

    // Lower bound for n micro-batches: at least the single-micro-batch
    // bound once (pipelining can overlap the rest), and at least the
    // bottleneck's full n× serial load at line rate.
    let single = lower_bound_ns(&dag, task_cost(topo, chunk));
    let line_rate_cost = |t: &rescc::ir::Task| {
        let conn = topo.connection(t.src, t.dst);
        chunk as f64 * conn.params.beta_ns_per_byte
    };
    let bottleneck_line = rescc::ir::bottleneck_resource_ns(&dag, line_rate_cost) * n_mb as f64;
    let lower = single.max(bottleneck_line);

    // Upper bound: every invocation strictly serialized at TB rate.
    let serial_all: f64 = dag
        .tasks()
        .iter()
        .map(|t| task_cost(topo, chunk)(t))
        .sum::<f64>()
        * n_mb as f64;

    for backend in [
        &RescclBackend::default() as &dyn Backend,
        &NcclBackend::default(),
        &MscclBackend {
            interpreter_overhead_ns: 0.0,
            ..MscclBackend::default()
        },
    ] {
        let rep = backend.run_unchecked(spec, topo, buffer, chunk).unwrap();
        assert!(
            rep.sim.completion_ns >= lower * 0.999,
            "{} on {} finished in {:.1}us, below the lower bound {:.1}us",
            backend.name(),
            spec.name(),
            rep.sim.completion_ns / 1e3,
            lower / 1e3
        );
        assert!(
            rep.sim.completion_ns <= serial_all * 1.5,
            "{} on {} took {:.1}us, above even the serial bound {:.1}us",
            backend.name(),
            spec.name(),
            rep.sim.completion_ns / 1e3,
            serial_all / 1e3
        );
    }
}

#[test]
fn bounds_hold_for_ring() {
    check_bounds(&ring_allgather(8), &Topology::a100(1, 8));
    check_bounds(&ring_allgather(8), &Topology::a100(2, 4));
}

#[test]
fn bounds_hold_for_hm() {
    check_bounds(&hm_allgather(2, 4), &Topology::a100(2, 4));
    check_bounds(&hm_allreduce(2, 4), &Topology::a100(2, 4));
}

#[test]
fn bounds_hold_for_synthesized() {
    check_bounds(&taccl_like_allgather(2, 4), &Topology::a100(2, 4));
}

#[test]
fn bounds_hold_on_v100() {
    check_bounds(&hm_allgather(2, 4), &Topology::v100(2, 4));
}
