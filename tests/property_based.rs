//! Property-based tests (proptest) on the core invariants:
//!
//! * schedules cover the DAG, respect data deps, never co-locate
//!   conflicting tasks,
//! * allocations cover every task side exactly once per micro-batch slice,
//! * randomly generated broadcast-tree AllGathers and reduction-tree
//!   collectives are executed correctly by the full pipeline,
//! * pretty-printed DSL reparses to the same AST.

use proptest::prelude::*;
use rescc::algos::{compose_allreduce, reverse_allgather};
use rescc::alloc::TbAllocation;
use rescc::core::Compiler;
use rescc::ir::DepDag;
use rescc::lang::verify_collective;
use rescc::lang::{parse, pretty, AlgoBuilder, AlgoSpec, OpType};
use rescc::sched::{hpds, round_robin};
use rescc::topology::Topology;

const MB: u64 = 1 << 20;

/// Build a random-but-valid AllGather: for every chunk `c`, a random
/// spanning broadcast order over all ranks starting at the owner. Any such
/// spec is a correct AllGather, whatever the shape — the pipeline must
/// handle them all.
fn random_allgather(n: u32, seed: &[u32]) -> AlgoSpec {
    let mut b = AlgoBuilder::new("random-ag", OpType::AllGather, n);
    for c in 0..n {
        // A permutation of receivers derived from the seed: each rank
        // receives chunk c from a random rank that already holds it.
        let mut holders = vec![c];
        let mut step = 0u32;
        let mut remaining: Vec<u32> = (0..n).filter(|&r| r != c).collect();
        let mut i = 0usize;
        while !remaining.is_empty() {
            let pick = seed[(c as usize + i) % seed.len()] as usize % remaining.len();
            let dst = remaining.swap_remove(pick);
            let src = holders[seed[(c as usize + i + 1) % seed.len()] as usize % holders.len()];
            b.recv(src, dst, step, c);
            holders.push(dst);
            step += 1;
            i += 1;
        }
    }
    b.build().expect("random broadcast trees are well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_allgathers_execute_correctly(
        shape_idx in 0usize..4,
        seed in prop::collection::vec(0u32..1000, 8..32),
    ) {
        let (nodes, g) = [(1u32, 4u32), (2, 2), (2, 4), (4, 2)][shape_idx];
        let topo = Topology::a100(nodes, g);
        let spec = random_allgather(nodes * g, &seed);
        let plan = Compiler::new().compile_spec(&spec, &topo).unwrap();
        let rep = plan.run(spec.n_chunks() as u64 * 2 * MB, MB).unwrap();
        prop_assert_eq!(rep.data_valid, Some(true));
    }

    #[test]
    fn random_allgather_reversal_is_correct_reduce_scatter(
        seed in prop::collection::vec(0u32..1000, 8..24),
    ) {
        let topo = Topology::a100(2, 4);
        let ag = random_allgather(8, &seed);
        let rs = reverse_allgather(&ag);
        let plan = Compiler::new().compile_spec(&rs, &topo).unwrap();
        let rep = plan.run(16 * MB, MB).unwrap();
        prop_assert_eq!(rep.data_valid, Some(true));
    }

    #[test]
    fn random_composed_allreduce_is_correct(
        seed in prop::collection::vec(0u32..1000, 8..24),
    ) {
        let topo = Topology::a100(2, 4);
        let ag = random_allgather(8, &seed);
        let ar = compose_allreduce("random-ar", &reverse_allgather(&ag), &ag);
        let plan = Compiler::new().compile_spec(&ar, &topo).unwrap();
        let rep = plan.run(16 * MB, MB).unwrap();
        prop_assert_eq!(rep.data_valid, Some(true));
    }

    #[test]
    fn schedulers_always_produce_valid_schedules(
        shape_idx in 0usize..4,
        seed in prop::collection::vec(0u32..1000, 8..32),
    ) {
        let (nodes, g) = [(1u32, 8u32), (2, 4), (4, 2), (2, 8)][shape_idx];
        let topo = Topology::a100(nodes, g);
        let spec = random_allgather(nodes * g, &seed);
        let dag = DepDag::build(&spec, &topo).unwrap();
        let h = hpds(&dag);
        prop_assert!(h.validate(&dag).is_ok(), "hpds invalid: {:?}", h.validate(&dag));
        let rr = round_robin(&dag);
        prop_assert!(rr.validate(&dag).is_ok());
        // Both schedulers schedule exactly the DAG, once.
        prop_assert_eq!(h.n_tasks(), dag.len());
        prop_assert_eq!(rr.n_tasks(), dag.len());
    }

    #[test]
    fn allocations_always_validate(
        seed in prop::collection::vec(0u32..1000, 8..32),
        channels in 1u32..6,
    ) {
        let topo = Topology::a100(2, 4);
        let spec = random_allgather(8, &seed);
        let dag = DepDag::build(&spec, &topo).unwrap();
        let sched = hpds(&dag);
        let state = TbAllocation::state_based(&dag, &sched);
        prop_assert!(state.validate(&dag, &sched).is_ok());
        let conn = TbAllocation::connection_based(&dag, &sched, channels);
        prop_assert!(conn.validate(&dag, &sched).is_ok());
        // State-based merging never uses more TBs than one-per-endpoint.
        let conn1 = TbAllocation::connection_based(&dag, &sched, 1);
        prop_assert!(state.total_tbs() <= conn1.total_tbs());
    }

    #[test]
    fn dsl_pretty_print_roundtrips(
        n in 2u32..16,
        a in 0i64..100,
        b in 1i64..100,
        c in 1i64..100,
    ) {
        // Generate a program with a moderately nasty expression and check
        // parse(pretty(parse(src))) == parse(src).
        let src = format!(
            "def ResCCLAlgo(nRanks={n}, OpType=\"Allgather\"):\n    \
             x = ({a}+{b})*{c}-{a}%({b}+1)/{c}\n    \
             for r in range(0, {n}):\n        \
                 transfer(r, (r+1)%{n}, 0, r, recv)\n"
        );
        let p1 = parse(&src).unwrap();
        let p2 = parse(&pretty(&p1)).unwrap();
        prop_assert_eq!(p1, p2);
    }

    #[test]
    fn static_verifier_agrees_with_simulator(
        seed in prop::collection::vec(0u32..1000, 8..24),
        break_it in proptest::bool::ANY,
    ) {
        // For random broadcast-tree AllGathers (and randomly corrupted
        // variants), the O(tasks) static verifier and the discrete-event
        // simulator's runtime data check must agree on correctness.
        let topo = Topology::a100(2, 4);
        let spec = random_allgather(8, &seed);
        let spec = if break_it {
            // Drop the last transfer: some rank misses a chunk.
            let ts = spec.transfers()[..spec.transfers().len() - 1].to_vec();
            AlgoSpec::new("broken", OpType::AllGather, 8, ts).unwrap()
        } else {
            spec
        };
        let static_ok = verify_collective(&spec).is_ok();
        let mut compiler = Compiler::new();
        compiler.verify = false; // let the simulator be the judge
        let sim_ok = compiler
            .compile_spec(&spec, &topo)
            .and_then(|plan| plan.run(16 * MB, MB))
            .is_ok();
        prop_assert_eq!(static_ok, sim_ok, "verifier and simulator disagree");
        prop_assert_eq!(static_ok, !break_it);
    }

    #[test]
    fn hpds_deterministic_across_runs(
        seed in prop::collection::vec(0u32..1000, 8..16),
    ) {
        let topo = Topology::a100(2, 4);
        let spec = random_allgather(8, &seed);
        let dag = DepDag::build(&spec, &topo).unwrap();
        prop_assert_eq!(hpds(&dag), hpds(&dag));
    }

    #[test]
    fn parallel_compile_matches_serial(
        shape_idx in 0usize..4,
        threads in 2usize..8,
        seed in prop::collection::vec(0u32..1000, 8..24),
    ) {
        // The chunked compile phases (verification, DAG construction,
        // kernel lowering) must produce the same artifact at any thread
        // count as the serial pipeline — scheduling stays sequential, so
        // the whole plan is deterministic.
        let (nodes, g) = [(1u32, 4u32), (2, 2), (2, 4), (4, 2)][shape_idx];
        let topo = Topology::a100(nodes, g);
        let spec = random_allgather(nodes * g, &seed);
        let serial = Compiler::new().compile_spec(&spec, &topo).unwrap();
        let parallel = Compiler::new()
            .with_threads(threads)
            .compile_spec(&spec, &topo)
            .unwrap();
        prop_assert!(serial.semantic_eq(&parallel), "thread count changed the plan");
    }
}
