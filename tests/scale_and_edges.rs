//! Scale stress and edge cases that only show up at the seams:
//! degenerate micro-batch counts, channel counts exceeding micro-batches,
//! one-chunk buffers, large clusters, and fused execution on multi-node
//! rings.

use rescc::algos::{
    hm_allreduce, nccl_rings_allreduce, recursive_halving_doubling_allreduce, ring_allgather,
};
use rescc::backends::{Backend, MscclBackend, NcclBackend, RescclBackend};
use rescc::core::Compiler;
use rescc::topology::Topology;

const MB: u64 = 1 << 20;

#[test]
fn single_micro_batch_everywhere() {
    // Buffer so small each chunk fits one invocation — no pipelining at
    // all; everything must still be correct.
    let topo = Topology::a100(2, 4);
    let spec = hm_allreduce(2, 4);
    for backend in [
        &NcclBackend::default() as &dyn Backend,
        &MscclBackend::default(),
        &RescclBackend::default(),
    ] {
        let rep = backend.run(&spec, &topo, 4 * MB, MB).unwrap();
        assert_eq!(rep.sim.n_micro_batches, 1, "{}", backend.name());
        assert_eq!(rep.sim.data_valid, Some(true), "{}", backend.name());
    }
}

#[test]
fn more_channels_than_micro_batches() {
    // 2 micro-batches against 8 channels: most channel TBs have zero work
    // (their micro-batch window is empty) and must not deadlock the run.
    let topo = Topology::a100(2, 4);
    let spec = hm_allreduce(2, 4);
    let backend = NcclBackend { n_channels: 8 };
    let rep = backend.run(&spec, &topo, 16 * MB, MB).unwrap();
    assert_eq!(rep.sim.data_valid, Some(true));
    // Idle channel TBs still occupy SMs under the rigid model.
    assert!(rep.sim.tb_stats.iter().any(|t| t.n_invocations == 0));
}

#[test]
fn tiny_chunk_many_micro_batches() {
    // 64 KiB chunks: 32 micro-batches of small invocations — the latency-
    // dominated regime.
    let topo = Topology::a100(1, 4);
    let spec = ring_allgather(4);
    let rep = RescclBackend::default()
        .run(&spec, &topo, 8 * MB, 64 << 10)
        .unwrap();
    assert_eq!(rep.sim.n_micro_batches, 32);
    assert_eq!(rep.sim.data_valid, Some(true));
}

#[test]
fn large_cluster_compile_and_run() {
    // 8 nodes × 8 GPUs = 64 ranks: compile through the full pipeline and
    // simulate a small collective with validation on.
    let topo = Topology::a100(8, 8);
    let plan = Compiler::new()
        .compile_spec(&hm_allreduce(8, 8), &topo)
        .unwrap();
    assert!(plan.dag.len() > 3000);
    let rep = plan.run(64 * MB, MB).unwrap();
    assert_eq!(rep.data_valid, Some(true));
}

#[test]
fn fused_execution_on_multinode_rings() {
    // Fusion + chain merging across NIC boundaries, with validation.
    let topo = Topology::a100(2, 8);
    let spec = nccl_rings_allreduce(2, 8, 4);
    let rep = RescclBackend::with_fusion()
        .run(&spec, &topo, 64 * MB, MB)
        .unwrap();
    assert_eq!(rep.sim.data_valid, Some(true));
}

#[test]
fn h100_preset_runs() {
    let topo = Topology::h100(2, 8);
    let spec = recursive_halving_doubling_allreduce(16);
    let rep = RescclBackend::default()
        .run(&spec, &topo, 64 * MB, MB)
        .unwrap();
    assert_eq!(rep.sim.data_valid, Some(true));
    // H100 NICs are 2x A100's: the same algorithm must be faster.
    let a100 = RescclBackend::default()
        .run(&spec, &Topology::a100(2, 8), 64 * MB, MB)
        .unwrap();
    assert!(rep.sim.completion_ns < a100.sim.completion_ns);
}

#[test]
fn odd_buffer_sizes_with_ragged_tails() {
    // Buffer not divisible by chunk count: the final micro-batch is short.
    let topo = Topology::a100(1, 8);
    let spec = ring_allgather(8);
    for buffer in [17 * MB, 100 * MB + 12345, 3 * MB] {
        let rep = RescclBackend::default()
            .run(&spec, &topo, buffer, MB)
            .unwrap();
        assert_eq!(rep.sim.data_valid, Some(true), "buffer {buffer}");
    }
}

#[test]
fn two_rank_minimum() {
    let topo = Topology::a100(1, 2);
    let spec = ring_allgather(2);
    let rep = RescclBackend::default()
        .run(&spec, &topo, 8 * MB, MB)
        .unwrap();
    assert_eq!(rep.sim.data_valid, Some(true));
}
