//! End-to-end integration: every algorithm in the library, compiled through
//! the full ResCCL pipeline (parse/build → DAG → HPDS → state-based TBs →
//! kernel generation → simulation), must produce a machine-verified correct
//! collective on every topology it fits.

use rescc::algos::*;
use rescc::core::Compiler;
use rescc::lang::AlgoSpec;
use rescc::sim::SimConfig;
use rescc::topology::Topology;

const MB: u64 = 1 << 20;

fn check(spec: &AlgoSpec, topo: &Topology) {
    let plan = Compiler::new()
        .compile_spec(spec, topo)
        .unwrap_or_else(|e| panic!("{} failed to compile: {e}", spec.name()));
    // Two buffer sizes: single micro-batch and multi-micro-batch.
    for buffer in [
        spec.n_chunks() as u64 * MB / 2,
        spec.n_chunks() as u64 * 4 * MB,
    ] {
        let rep = plan
            .run(buffer, MB)
            .unwrap_or_else(|e| panic!("{} failed to run: {e}", spec.name()));
        assert_eq!(
            rep.data_valid,
            Some(true),
            "{} corrupted data at buffer {buffer}",
            spec.name()
        );
        assert!(rep.completion_ns > 0.0);
    }
}

#[test]
fn ring_family_all_topologies() {
    for topo in [
        Topology::a100(1, 8),
        Topology::a100(2, 4),
        Topology::v100(2, 4),
    ] {
        let n = topo.n_ranks();
        check(&ring_allgather(n), &topo);
        check(&ring_reduce_scatter(n), &topo);
        check(&ring_allreduce(n), &topo);
    }
}

#[test]
fn hm_family_all_topologies() {
    for (nodes, g) in [(2u32, 4u32), (2, 8), (4, 4), (4, 8)] {
        let topo = Topology::a100(nodes, g);
        check(&hm_allgather(nodes, g), &topo);
        check(&hm_reduce_scatter(nodes, g), &topo);
        check(&hm_allreduce(nodes, g), &topo);
    }
}

#[test]
fn synthesized_family() {
    for (nodes, g) in [(2u32, 4u32), (2, 8), (4, 4)] {
        let topo = Topology::a100(nodes, g);
        check(&taccl_like_allgather(nodes, g), &topo);
        check(&taccl_like_allreduce(nodes, g), &topo);
        check(&teccl_like_allgather(nodes * g), &topo);
        check(&teccl_like_allreduce(nodes * g), &topo);
    }
}

#[test]
fn nccl_rings_and_tree_family() {
    for (nodes, g) in [(2u32, 4u32), (2, 8)] {
        let topo = Topology::a100(nodes, g);
        check(&nccl_rings_allgather(nodes, g, g / 2), &topo);
        check(&nccl_rings_reduce_scatter(nodes, g, g / 2), &topo);
        check(&nccl_rings_allreduce(nodes, g, g / 2), &topo);
        check(&dbtree_allreduce(nodes * g), &topo);
    }
}

#[test]
fn dsl_source_compiles_and_validates_end_to_end() {
    let topo = Topology::a100(4, 8);
    let plan = Compiler::new()
        .compile_source(&hm_allreduce_source(4, 8), &topo)
        .expect("Fig. 16 program compiles");
    let rep = plan.run(64 * MB, MB).expect("runs");
    assert_eq!(rep.data_valid, Some(true));
}

#[test]
fn compiled_plan_is_reusable_across_buffer_sizes() {
    // Compile once, run many — the offline/online split of the paper.
    let topo = Topology::a100(2, 8);
    let plan = Compiler::new()
        .compile_spec(&hm_allreduce(2, 8), &topo)
        .unwrap();
    let mut last_bw = 0.0;
    for shift in 0..5 {
        let buffer = (32 * MB) << shift;
        let rep = plan.run(buffer, MB).unwrap();
        assert_eq!(rep.data_valid, Some(true));
        let bw = rep.algo_bandwidth_gbps(buffer);
        assert!(
            bw >= last_bw * 0.8,
            "bandwidth should grow (or hold) with buffer size: {last_bw} -> {bw}"
        );
        last_bw = bw;
    }
}

#[test]
fn rigid_and_flexible_runs_agree_on_completion() {
    // Early release changes occupancy accounting, never timing.
    let topo = Topology::a100(2, 4);
    let plan = Compiler::new()
        .compile_spec(&hm_allgather(2, 4), &topo)
        .unwrap();
    let flex = plan.run_with(64 * MB, MB, &SimConfig::default()).unwrap();
    let rigid = plan.run_with(64 * MB, MB, &SimConfig::rigid()).unwrap();
    assert_eq!(flex.completion_ns, rigid.completion_ns);
    let occ_flex: f64 = flex.tb_stats.iter().map(|t| t.occupancy_ns).sum();
    let occ_rigid: f64 = rigid.tb_stats.iter().map(|t| t.occupancy_ns).sum();
    assert!(occ_flex < occ_rigid);
}
