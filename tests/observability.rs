//! Observability integration tests: bubble attribution must *account*
//! for the engine's aggregate counters exactly, and must never perturb
//! the simulation it observes. The property tests at the bottom check
//! the reconciliation invariants over randomized topologies and buffer
//! sizes.

use proptest::prelude::*;
use rescc::algos::{hm_allgather, hm_allreduce, ring_allgather};
use rescc::core::Compiler;
use rescc::sim::{SimConfig, SimReport};
use rescc::topology::Topology;

const MB: u64 = 1 << 20;

fn run_observed(topo: &Topology, spec: &rescc::lang::AlgoSpec, buffer: u64) -> SimReport {
    let plan = Compiler::new().compile_spec(spec, topo).unwrap();
    let cfg = SimConfig::default()
        .without_validation()
        .with_observability();
    plan.run_with(buffer, MB, &cfg).unwrap()
}

/// The reconciliation contract: hard bubbles tile sync time, soft
/// bubbles plus line-rate segments tile busy time, link buckets tile
/// link active time — each within relative float-association error.
fn assert_reconciles(rep: &SimReport) {
    let obs = rep.obs.as_ref().expect("attribution enabled");

    // Every interval is well-formed and inside the run.
    for b in &obs.bubbles {
        assert!(b.end_ns >= b.start_ns, "negative bubble: {b:?}");
        assert!(b.start_ns >= 0.0, "bubble before launch: {b:?}");
        assert!(
            b.end_ns <= rep.completion_ns * (1.0 + 1e-9),
            "bubble past completion: {b:?}"
        );
    }

    for (i, tb) in rep.tb_stats.iter().enumerate() {
        // Hard bubbles (rendezvous + dep waits) are the classified
        // decomposition of `sync_ns`.
        let hard = obs.hard_bubble_ns(i as u32);
        assert!(
            (hard - tb.sync_ns).abs() <= 1e-6 * tb.sync_ns.max(1.0),
            "r{}tb{}: hard bubbles {hard} vs sync {}",
            tb.rank,
            tb.tb,
            tb.sync_ns
        );
        // The bucketed timeline tiles the same decomposition: line-rate
        // transfer + startup + contention sum to busy, rendezvous +
        // dep-wait sum to sync.
        let tl = &obs.tb_timelines[i];
        assert_eq!((tl.rank, tl.tb), (tb.rank, tb.tb), "timeline order");
        let soft: f64 = tl.transfer.iter().sum::<f64>()
            + tl.startup.iter().sum::<f64>()
            + tl.contention.iter().sum::<f64>();
        assert!(
            (soft - tb.busy_ns).abs() <= 1e-6 * tb.busy_ns.max(1.0),
            "r{}tb{}: timeline busy {soft} vs busy {}",
            tb.rank,
            tb.tb,
            tb.busy_ns
        );
        let blocked: f64 = tl.rendezvous.iter().sum::<f64>() + tl.dep_wait.iter().sum::<f64>();
        assert!(
            (blocked - tb.sync_ns).abs() <= 1e-6 * tb.sync_ns.max(1.0),
            "r{}tb{}: timeline sync {blocked} vs sync {}",
            tb.rank,
            tb.tb,
            tb.sync_ns
        );
        // busy + sync never exceeds the SM occupancy window.
        assert!(
            tb.busy_ns + tb.sync_ns <= tb.occupancy_ns * (1.0 + 1e-9) + 1.0,
            "r{}tb{}: busy {} + sync {} vs occupancy {}",
            tb.rank,
            tb.tb,
            tb.busy_ns,
            tb.sync_ns,
            tb.occupancy_ns
        );
    }

    // Per-link bucket sums equal the engine's active-time counter, and
    // the timeline population mirrors `resource_stats`.
    assert_eq!(obs.link_timelines.len(), rep.resource_stats.len());
    for (lt, rs) in obs.link_timelines.iter().zip(rep.resource_stats.iter()) {
        assert_eq!(lt.resource, rs.resource);
        let sum: f64 = lt.active.iter().sum();
        assert!(
            (sum - rs.active_ns).abs() <= 1e-6 * rs.active_ns.max(1.0),
            "link {}: buckets {sum} vs active {}",
            lt.resource,
            rs.active_ns
        );
    }
}

#[test]
fn hard_bubbles_reconcile_with_sync_time() {
    for (topo, spec, buffer) in [
        (Topology::a100(2, 4), hm_allreduce(2, 4), 128 * MB),
        (Topology::a100(2, 8), hm_allgather(2, 8), 64 * MB),
        (Topology::a100(1, 4), ring_allgather(4), 32 * MB),
    ] {
        let rep = run_observed(&topo, &spec, buffer);
        assert_reconciles(&rep);
        assert!(
            !rep.obs.as_ref().unwrap().bubbles.is_empty(),
            "a multi-rank collective with startup latency must have bubbles"
        );
    }
}

#[test]
fn per_tb_per_cause_intervals_never_overlap() {
    let rep = run_observed(&Topology::a100(2, 4), &hm_allreduce(2, 4), 64 * MB);
    let obs = rep.obs.as_ref().unwrap();
    let mut by_key: std::collections::HashMap<(u32, u32), Vec<(f64, f64)>> =
        std::collections::HashMap::new();
    for b in &obs.bubbles {
        by_key
            .entry((b.tb_index, b.cause as u32))
            .or_default()
            .push((b.start_ns, b.end_ns));
    }
    for ((tb, cause), mut iv) in by_key {
        iv.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in iv.windows(2) {
            assert!(
                w[0].1 <= w[1].0 + 1e-9 * w[1].0.abs().max(1.0),
                "tb {tb} cause {cause}: [{}, {}) overlaps [{}, {})",
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
    }
}

#[test]
fn attribution_is_read_only() {
    let topo = Topology::a100(2, 4);
    let plan = Compiler::new()
        .compile_spec(&hm_allreduce(2, 4), &topo)
        .unwrap();
    let off = SimConfig::default().without_validation();
    let on = off.clone().with_observability();
    let rep_off = plan.run_with(64 * MB, MB, &off).unwrap();
    let mut rep_on = plan.run_with(64 * MB, MB, &on).unwrap();
    assert!(rep_on.obs.is_some());
    rep_on.obs = None;
    assert_eq!(rep_on, rep_off, "attribution changed the simulation");
    // And off means *off*: no payload, no cost center.
    assert!(rep_off.obs.is_none());
}

#[test]
fn bucket_count_is_configurable_and_conserves_time() {
    let topo = Topology::a100(2, 4);
    let plan = Compiler::new()
        .compile_spec(&hm_allgather(2, 4), &topo)
        .unwrap();
    for buckets in [1u32, 7, 64, 1000] {
        let cfg = SimConfig::default()
            .without_validation()
            .with_observability()
            .with_obs_buckets(buckets);
        let rep = plan.run_with(32 * MB, MB, &cfg).unwrap();
        let obs = rep.obs.as_ref().unwrap();
        assert_eq!(obs.n_buckets, buckets);
        assert_reconciles(&rep); // conservation holds at any granularity
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Reconciliation holds for arbitrary shapes and buffer sizes, and
    /// attribution stays read-only everywhere — not just on the seeds.
    #[test]
    fn attribution_reconciles_everywhere(
        nodes in 1u32..3,
        gpus_idx in 0usize..3,
        buf_idx in 0usize..3,
    ) {
        let gpus = [2u32, 4, 8][gpus_idx];
        let buf_mb = [8u64, 32, 96][buf_idx];
        let topo = Topology::a100(nodes, gpus);
        let spec = hm_allreduce(nodes, gpus);
        let plan = Compiler::new().compile_spec(&spec, &topo).unwrap();
        let off = SimConfig::default().without_validation();
        let on = off.clone().with_observability();
        let rep_off = plan.run_with(buf_mb * MB, MB, &off).unwrap();
        let mut rep_on = plan.run_with(buf_mb * MB, MB, &on).unwrap();
        assert_reconciles(&rep_on);
        rep_on.obs = None;
        prop_assert_eq!(rep_on, rep_off);
    }
}
