//! Fault-injection integration tests: the pipeline must stay *correct*
//! under adverse conditions (latency jitter, degraded links) and the
//! timing must respond the way a real cluster would.

use rescc::algos::{hm_allgather, hm_allreduce};
use rescc::core::Compiler;
use rescc::sim::SimConfig;
use rescc::topology::{Rank, Topology};

const MB: u64 = 1 << 20;

#[test]
fn jitter_never_breaks_correctness() {
    let topo = Topology::a100(2, 4);
    let plan = Compiler::new()
        .compile_spec(&hm_allreduce(2, 4), &topo)
        .unwrap();
    for seed in 0..5u64 {
        let cfg = SimConfig::default().with_jitter(0.8, seed);
        let rep = plan.run_with(32 * MB, MB, &cfg).unwrap();
        assert_eq!(rep.data_valid, Some(true), "seed {seed}");
    }
}

#[test]
fn jitter_is_reproducible_per_seed() {
    let topo = Topology::a100(2, 4);
    let plan = Compiler::new()
        .compile_spec(&hm_allgather(2, 4), &topo)
        .unwrap();
    let cfg = SimConfig::default().with_jitter(0.5, 7);
    let a = plan.run_with(32 * MB, MB, &cfg).unwrap();
    let b = plan.run_with(32 * MB, MB, &cfg).unwrap();
    assert_eq!(a, b);
    let other = plan
        .run_with(32 * MB, MB, &SimConfig::default().with_jitter(0.5, 8))
        .unwrap();
    assert_ne!(a.completion_ns, other.completion_ns);
}

#[test]
fn degrading_a_bottleneck_nic_slows_more_than_an_nvlink() {
    let topo = Topology::a100(2, 4);
    let plan = Compiler::new()
        .compile_spec(&hm_allreduce(2, 4), &topo)
        .unwrap();
    let base = plan
        .run_with(128 * MB, MB, &SimConfig::default().without_validation())
        .unwrap();

    // Degrade one NIC to 25%.
    let nic = topo.nic_tx(topo.nic_of(Rank::new(0)));
    let cfg_nic = SimConfig::default()
        .without_validation()
        .with_degraded(nic, 0.25);
    let slow_nic = plan.run_with(128 * MB, MB, &cfg_nic).unwrap();

    // Degrade one NVLink pair channel to 25%.
    let chan = topo.pair_chan(Rank::new(0), Rank::new(1));
    let cfg_chan = SimConfig::default()
        .without_validation()
        .with_degraded(chan, 0.25);
    let slow_chan = plan.run_with(128 * MB, MB, &cfg_chan).unwrap();

    assert!(slow_nic.completion_ns > base.completion_ns * 1.2);
    assert!(
        slow_nic.completion_ns > slow_chan.completion_ns,
        "a degraded NIC ({:.1}ms) must hurt more than a degraded NVLink \
         channel ({:.1}ms); baseline {:.1}ms",
        slow_nic.completion_ns / 1e6,
        slow_chan.completion_ns / 1e6,
        base.completion_ns / 1e6
    );
}

#[test]
fn degraded_runs_stay_correct() {
    let topo = Topology::a100(2, 4);
    let plan = Compiler::new()
        .compile_spec(&hm_allreduce(2, 4), &topo)
        .unwrap();
    let nic = topo.nic_rx(topo.nic_of(Rank::new(5)));
    let cfg = SimConfig::default().with_degraded(nic, 0.1);
    let rep = plan.run_with(16 * MB, MB, &cfg).unwrap();
    assert_eq!(rep.data_valid, Some(true));
}

#[test]
fn combined_faults() {
    let topo = Topology::a100(2, 4);
    let plan = Compiler::new()
        .compile_spec(&hm_allgather(2, 4), &topo)
        .unwrap();
    let nic = topo.nic_tx(topo.nic_of(Rank::new(2)));
    let cfg = SimConfig::default()
        .with_jitter(0.4, 99)
        .with_degraded(nic, 0.5);
    let rep = plan.run_with(32 * MB, MB, &cfg).unwrap();
    assert_eq!(rep.data_valid, Some(true));
}
