//! Fault-injection integration tests: the pipeline must stay *correct*
//! under adverse conditions (latency jitter, degraded links, mid-run
//! resource death) and the timing must respond the way a real cluster
//! would. The property tests at the bottom drive the full watchdog
//! (retry + mask + recompile) path with seeded random fault timelines.

use proptest::prelude::*;
use rescc::algos::{hm_allgather, hm_allreduce};
use rescc::backends::Communicator;
use rescc::core::Compiler;
use rescc::sim::{FaultTimeline, SimConfig, SimError};
use rescc::topology::{Rank, Topology};

const MB: u64 = 1 << 20;

#[test]
fn jitter_never_breaks_correctness() {
    let topo = Topology::a100(2, 4);
    let plan = Compiler::new()
        .compile_spec(&hm_allreduce(2, 4), &topo)
        .unwrap();
    for seed in 0..5u64 {
        let cfg = SimConfig::default().with_jitter(0.8, seed);
        let rep = plan.run_with(32 * MB, MB, &cfg).unwrap();
        assert_eq!(rep.data_valid, Some(true), "seed {seed}");
    }
}

#[test]
fn jitter_is_reproducible_per_seed() {
    let topo = Topology::a100(2, 4);
    let plan = Compiler::new()
        .compile_spec(&hm_allgather(2, 4), &topo)
        .unwrap();
    let cfg = SimConfig::default().with_jitter(0.5, 7);
    let a = plan.run_with(32 * MB, MB, &cfg).unwrap();
    let b = plan.run_with(32 * MB, MB, &cfg).unwrap();
    assert_eq!(a, b);
    let other = plan
        .run_with(32 * MB, MB, &SimConfig::default().with_jitter(0.5, 8))
        .unwrap();
    assert_ne!(a.completion_ns, other.completion_ns);
}

#[test]
fn degrading_a_bottleneck_nic_slows_more_than_an_nvlink() {
    let topo = Topology::a100(2, 4);
    let plan = Compiler::new()
        .compile_spec(&hm_allreduce(2, 4), &topo)
        .unwrap();
    let base = plan
        .run_with(128 * MB, MB, &SimConfig::default().without_validation())
        .unwrap();

    // Degrade one NIC to 25%.
    let nic = topo.nic_tx(topo.nic_of(Rank::new(0)));
    let cfg_nic = SimConfig::default()
        .without_validation()
        .with_degraded(nic, 0.25);
    let slow_nic = plan.run_with(128 * MB, MB, &cfg_nic).unwrap();

    // Degrade one NVLink pair channel to 25%.
    let chan = topo.pair_chan(Rank::new(0), Rank::new(1));
    let cfg_chan = SimConfig::default()
        .without_validation()
        .with_degraded(chan, 0.25);
    let slow_chan = plan.run_with(128 * MB, MB, &cfg_chan).unwrap();

    assert!(slow_nic.completion_ns > base.completion_ns * 1.2);
    assert!(
        slow_nic.completion_ns > slow_chan.completion_ns,
        "a degraded NIC ({:.1}ms) must hurt more than a degraded NVLink \
         channel ({:.1}ms); baseline {:.1}ms",
        slow_nic.completion_ns / 1e6,
        slow_chan.completion_ns / 1e6,
        base.completion_ns / 1e6
    );
}

#[test]
fn degraded_runs_stay_correct() {
    let topo = Topology::a100(2, 4);
    let plan = Compiler::new()
        .compile_spec(&hm_allreduce(2, 4), &topo)
        .unwrap();
    let nic = topo.nic_rx(topo.nic_of(Rank::new(5)));
    let cfg = SimConfig::default().with_degraded(nic, 0.1);
    let rep = plan.run_with(16 * MB, MB, &cfg).unwrap();
    assert_eq!(rep.data_valid, Some(true));
}

#[test]
fn combined_faults() {
    let topo = Topology::a100(2, 4);
    let plan = Compiler::new()
        .compile_spec(&hm_allgather(2, 4), &topo)
        .unwrap();
    let nic = topo.nic_tx(topo.nic_of(Rank::new(2)));
    let cfg = SimConfig::default()
        .with_jitter(0.4, 99)
        .with_degraded(nic, 0.5);
    let rep = plan.run_with(32 * MB, MB, &cfg).unwrap();
    assert_eq!(rep.data_valid, Some(true));
}

#[test]
fn mid_run_link_death_is_a_typed_error_without_a_watchdog() {
    let topo = Topology::a100(2, 4);
    let plan = Compiler::new()
        .compile_spec(&hm_allreduce(2, 4), &topo)
        .unwrap();
    let chan = topo.pair_chan(Rank::new(0), Rank::new(1));
    let cfg = SimConfig::default()
        .without_validation()
        .with_faults(FaultTimeline::new().kill(chan, 100_000.0));
    let err = plan.run_with(128 * MB, MB, &cfg).unwrap_err();
    match err {
        SimError::ResourceDown {
            resource,
            permanent,
            at_ns,
            ..
        } => {
            assert_eq!(resource, chan.index() as u32);
            assert!(permanent);
            assert_eq!(at_ns, 100_000);
        }
        other => panic!("expected ResourceDown, got {other}"),
    }
}

#[test]
fn communicator_survives_permanent_link_death() {
    let topo = Topology::a100(2, 4);
    let chan = topo.pair_chan(Rank::new(2), Rank::new(3));
    let mut comm = Communicator::new(topo)
        .with_validation()
        .with_faults(FaultTimeline::new().kill(chan, 200_000.0));
    let rep = comm.all_reduce(128 * MB).unwrap();
    assert_eq!(rep.sim.data_valid, Some(true));
    let rec = rep.recovery.expect("fault run engages the watchdog");
    assert!(rec.recompiles >= 1);
    assert_eq!(rec.dead_resources, vec![chan.index() as u32]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any seeded *recovering* timeline (flaps, brownouts, stragglers —
    /// no permanent damage) must leave the collective correct once the
    /// watchdog has retried its way through.
    #[test]
    fn recovering_timelines_stay_correct(seed in 0u64..64) {
        let topo = Topology::a100(2, 4);
        let horizon = 1_500_000.0; // ~ a 32 MB AllReduce on this cluster
        let tl = FaultTimeline::seeded_recovering(
            seed,
            topo.n_resources(),
            topo.n_ranks(),
            horizon,
        );
        let mut comm = Communicator::new(topo).with_validation().with_faults(tl);
        let rep = comm.all_reduce(32 * MB).unwrap();
        prop_assert_eq!(rep.sim.data_valid, Some(true), "seed {}", seed);
        prop_assert!(rep.recovery.is_some());
    }

    /// Identical seeds replay byte-identically, including the recovery
    /// counters — the whole fault path is deterministic.
    #[test]
    fn fault_recovery_replays_byte_identically(seed in 0u64..32) {
        let run = || {
            let topo = Topology::a100(2, 4);
            let tl = FaultTimeline::seeded_recovering(
                seed,
                topo.n_resources(),
                topo.n_ranks(),
                1_500_000.0,
            );
            let mut comm = Communicator::new(topo).with_validation().with_faults(tl);
            comm.all_reduce(32 * MB).unwrap()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b);
    }
}
